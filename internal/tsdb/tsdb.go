// Package tsdb is the time-series database substrate standing in for
// InfluxDB 1.8: measurements hold rows of (timestamp, tag set, field
// values), writes arrive through an API or the line protocol, queries use
// the SELECT subset P-MoVE generates (Listing 3), and retention policies
// bound storage as discussed in §V-B.
//
// Field names carry the instance domain, mirroring how PCP exports
// per-instance metrics to InfluxDB: a per-CPU metric has fields "_cpu0",
// "_cpu1", …, and a per-NUMA-node metric "_node0", "_node1" (see the
// paper's Listing 3 queries).
//
// The ingest path is built for parallel hardware: the measurement map is
// striped over lock-sharded partitions (concurrent writers to different
// measurements never serialize), batches commit to the write-ahead log
// as one group-committed record (one fsync per batch, atomic recovery),
// and the wire protocol ships a whole batch per round trip (WRITEB).
package tsdb

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"pmove/internal/introspect"
	"pmove/internal/storage"
)

// Point is one row of a measurement.
type Point struct {
	Measurement string
	Tags        map[string]string
	Fields      map[string]float64
	// Time is nanoseconds since the epoch of the virtual clock.
	Time int64
}

// Validate checks the point is storable: a named measurement, at least
// one field, no empty tag/field keys (or empty tag values), and finite
// field values — NaN/±Inf round-trip through the line protocol but poison
// aggregations, so they are rejected with ErrNonFiniteField.
func (p *Point) Validate() error {
	if p.Measurement == "" {
		return fmt.Errorf("tsdb: point has no measurement")
	}
	if len(p.Fields) == 0 {
		return fmt.Errorf("tsdb: point in %q has no fields", p.Measurement)
	}
	for k, v := range p.Fields {
		if k == "" {
			return fmt.Errorf("%w: point in %q has an empty field name", ErrEmptyKey, p.Measurement)
		}
		if err := validateFinite(p.Measurement, k, v); err != nil {
			return err
		}
	}
	for k, v := range p.Tags {
		if k == "" || v == "" {
			return fmt.Errorf("%w: point in %q has an empty tag key or value", ErrEmptyKey, p.Measurement)
		}
	}
	return nil
}

// series is the rows of one measurement, kept sorted by time.
type series struct {
	points []Point
}

// add lands one point keeping the series time-ordered. Fast path:
// append when in time order (the common telemetry case).
func (s *series) add(p Point) {
	if n := len(s.points); n == 0 || s.points[n-1].Time <= p.Time {
		s.points = append(s.points, p)
		return
	}
	i := sort.Search(len(s.points), func(i int) bool { return s.points[i].Time > p.Time })
	s.points = append(s.points, Point{})
	copy(s.points[i+1:], s.points[i:])
	s.points[i] = p
}

// RetentionPolicy bounds how long data is kept (paper: "we rely on the
// retention policy of InfluxDB which describes for how long the DB keeps
// data").
type RetentionPolicy struct {
	Name     string
	Duration int64 // nanoseconds; 0 = keep forever
}

// NumShards is the lock-stripe width of the measurement map. Sixteen
// stripes keep independent telemetry shippers (one per instance domain
// or per target) off each other's mutexes while the per-read merge of
// the stats counters stays trivially cheap.
const NumShards = 16

// shard is one lock stripe: a slice of the measurement map plus its
// share of the cumulative write counters, merged on read by Stats.
type shard struct {
	mu           sync.RWMutex
	measurements map[string]*series
	points       uint64 // rows written into this stripe
	values       uint64 // field values written into this stripe
}

// insertLocked lands one validated point. Callers hold sh.mu.
func (sh *shard) insertLocked(p Point) {
	s := sh.measurements[p.Measurement]
	if s == nil {
		s = &series{}
		sh.measurements[p.Measurement] = s
	}
	s.add(p)
	sh.points++
	sh.values += uint64(len(p.Fields))
}

// insertRun lands every point of ps whose shard index (precomputed in
// idx) equals self, under ONE lock acquisition — the atomic-per-shard
// leg of a batch write. Consecutive points of the same measurement skip
// the map lookup, and the stats counters are bumped once per run.
func (sh *shard) insertRun(ps []Point, idx []uint32, self uint32) {
	sh.mu.Lock()
	var lastM string
	var lastS *series
	var rows, vals uint64
	for i := range ps {
		if idx[i] != self {
			continue
		}
		p := ps[i]
		s := lastS
		if s == nil || p.Measurement != lastM {
			s = sh.measurements[p.Measurement]
			if s == nil {
				s = &series{}
				sh.measurements[p.Measurement] = s
			}
			lastM, lastS = p.Measurement, s
		}
		s.add(p)
		rows++
		vals += uint64(len(p.Fields))
	}
	sh.points += rows
	sh.values += vals
	sh.mu.Unlock()
}

// DB is a time-series database: in-memory by default (New), optionally
// backed by a write-ahead log + snapshot data directory (Open) so
// acknowledged writes survive a crash.
type DB struct {
	// mu is the structural lock ordering writers against the durability
	// lifecycle: every mutator holds it SHARED (writers to different
	// shards proceed in parallel, serialized only on their stripe),
	// while Compact/Close/Crash hold it EXCLUSIVELY so the store
	// pointer and the shard contents are stable while a snapshot
	// renders or the store detaches. It also guards retention/store/
	// closed. Lock order: db.mu before any shard.mu.
	mu        sync.RWMutex
	retention RetentionPolicy
	// store is the durability layer; nil for the zero-config in-memory
	// mode every embedded use defaults to. closed marks a durable DB
	// whose directory was released (Close/Crash): still readable, but
	// writes would be silently volatile, so they are refused.
	store  *storage.Store
	closed bool

	shards [NumShards]shard

	// qcache memoizes aggregate query results; writers invalidate it
	// per measurement before acknowledging (see querycache.go).
	qcache *queryCache
}

// New creates an empty database with an infinite retention policy.
func New() *DB {
	db := &DB{retention: RetentionPolicy{Name: "autogen"}, qcache: newQueryCache(0)}
	for i := range db.shards {
		db.shards[i].measurements = make(map[string]*series)
	}
	return db
}

// SetIntrospection attaches the self-observability plane: query-cache
// hit/miss/evict/invalidation counters land in the introspector's
// registry as query.cache.* (exported with the pmove.self. prefix).
func (db *DB) SetIntrospection(in *introspect.Introspector) {
	db.qcache.setIntrospection(in)
}

// shardIndex stripes a measurement name with FNV-1a.
func shardIndex(measurement string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(measurement); i++ {
		h = (h ^ uint32(measurement[i])) * 16777619
	}
	return h % NumShards
}

// shardFor returns the stripe owning a measurement.
func (db *DB) shardFor(measurement string) *shard {
	return &db.shards[shardIndex(measurement)]
}

// SetRetention installs a retention policy; EnforceRetention applies it.
func (db *DB) SetRetention(rp RetentionPolicy) {
	db.mu.Lock()
	db.retention = rp
	db.mu.Unlock()
}

// Retention returns the current policy.
func (db *DB) Retention() RetentionPolicy {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.retention
}

// WritePoint inserts one point. On a durable DB the point is logged to
// the write-ahead log first (per the open fsync policy) — a nil return
// means the write is recoverable, not just resident.
func (db *DB) WritePoint(p Point) error {
	if err := p.Validate(); err != nil {
		return err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return fmt.Errorf("tsdb: write to closed durable DB")
	}
	if db.store != nil {
		line, err := EncodeLine(p)
		if err != nil {
			return err
		}
		if _, err := db.store.Append([]byte(line)); err != nil {
			// Not logged → not acknowledged; the in-memory state must not
			// run ahead of what recovery can reconstruct.
			return fmt.Errorf("tsdb: wal append: %w", err)
		}
	}
	sh := db.shardFor(p.Measurement)
	sh.mu.Lock()
	sh.insertLocked(p)
	sh.mu.Unlock()
	// Invalidate after the point is visible and before acknowledging:
	// a cache hit must never be older than an acknowledged write.
	db.qcache.invalidate(p.Measurement)
	return nil
}

// BatchError reports a rejected batch write: the offending point's
// index and how many points of the batch were applied. The engine
// validates the whole batch before touching the log or memory, so
// Applied is always 0 — a batch lands atomically or not at all — but
// the field is part of the contract so callers never have to assume it.
type BatchError struct {
	// Index is the position of the offending point in the batch.
	Index int
	// Applied is how many points of the batch landed before the
	// failure (0 under the validate-first engine).
	Applied int
	// Err is the underlying rejection.
	Err error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("tsdb: batch point %d (%d applied): %v", e.Index, e.Applied, e.Err)
}

func (e *BatchError) Unwrap() error { return e.Err }

// WriteBatch inserts a batch of points with a background context.
//
// Deprecated: use WriteBatchContext.
func (db *DB) WriteBatch(ps []Point) error {
	return db.WriteBatchContext(context.Background(), ps)
}

// WriteBatchContext inserts a batch atomically: every point is
// validated up front (a rejection returns a *BatchError with Applied ==
// 0 and no state change), a durable DB commits the whole batch as ONE
// group-committed WAL record (a single fsync amortized over the batch;
// recovery replays the batch frame entirely or — when the crash tore
// it — not at all), and the in-memory inserts take each shard lock once
// per batch rather than once per point. Points of different
// measurements may interleave with concurrent writers, but a batch is
// atomic per shard and all-or-nothing against crashes.
func (db *DB) WriteBatchContext(ctx context.Context, ps []Point) error {
	if len(ps) == 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("tsdb: batch: %w", err)
	}
	for i := range ps {
		if err := ps[i].Validate(); err != nil {
			return &BatchError{Index: i, Err: err}
		}
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return fmt.Errorf("tsdb: write to closed durable DB")
	}
	if db.store != nil {
		if err := db.appendBatchLocked(ps); err != nil {
			return err
		}
	}
	// Precompute each point's stripe, then land the batch one shard at a
	// time — one lock acquisition per touched stripe, input order
	// preserved within each.
	idx := make([]uint32, len(ps))
	var touched [NumShards]bool
	for i := range ps {
		idx[i] = shardIndex(ps[i].Measurement)
		touched[idx[i]] = true
	}
	for s := uint32(0); s < NumShards; s++ {
		if touched[s] {
			db.shards[s].insertRun(ps, idx, s)
		}
	}
	// Invalidate every written measurement after the batch is visible
	// and before acknowledging (deduplicated — batches repeat names).
	seen := make(map[string]struct{}, 4)
	for i := range ps {
		if _, ok := seen[ps[i].Measurement]; ok {
			continue
		}
		seen[ps[i].Measurement] = struct{}{}
		db.qcache.invalidate(ps[i].Measurement)
	}
	return nil
}

// appendBatchLocked group-commits a validated batch to the WAL as one
// record (plain line body for a single point, batch envelope
// otherwise). Callers hold db.mu shared with store non-nil.
func (db *DB) appendBatchLocked(ps []Point) error {
	if len(ps) == 1 {
		line, err := EncodeLine(ps[0])
		if err != nil {
			return &BatchError{Index: 0, Err: err}
		}
		if _, err := db.store.Append([]byte(line)); err != nil {
			return &BatchError{Index: 0, Err: fmt.Errorf("tsdb: wal append: %w", err)}
		}
		return nil
	}
	bodies := make([][]byte, len(ps))
	for i := range ps {
		line, err := EncodeLine(ps[i])
		if err != nil {
			return &BatchError{Index: i, Err: err}
		}
		bodies[i] = []byte(line)
	}
	if _, err := db.store.Append(storage.EncodeBatchBody(bodies)); err != nil {
		return &BatchError{Index: 0, Err: fmt.Errorf("tsdb: wal append: %w", err)}
	}
	return nil
}

// Measurements lists all measurement names, sorted.
func (db *DB) Measurements() []string {
	var out []string
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		for m := range sh.measurements {
			out = append(out, m)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Stats reports cumulative write counts: rows and individual field
// values, merged across the shard stripes on read.
func (db *DB) Stats() (points, values uint64) {
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		points += sh.points
		values += sh.values
		sh.mu.RUnlock()
	}
	return points, values
}

// CountValues returns the number of stored field values in a measurement,
// and how many of them are zero — the accounting Table III reports
// ("Inserted" and "Zeros" columns).
func (db *DB) CountValues(measurement string) (total, zeros uint64) {
	sh := db.shardFor(measurement)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s := sh.measurements[measurement]
	if s == nil {
		return 0, 0
	}
	for _, p := range s.points {
		for _, v := range p.Fields {
			total++
			if v == 0 {
				zeros++
			}
		}
	}
	return total, zeros
}

// EnforceRetention drops points older than now-Duration. Returns the
// number of points dropped.
func (db *DB) EnforceRetention(now int64) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.retention.Duration <= 0 {
		return 0
	}
	cutoff := now - db.retention.Duration
	dropped := 0
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.Lock()
		for name, s := range sh.measurements {
			i := sort.Search(len(s.points), func(i int) bool { return s.points[i].Time >= cutoff })
			if i > 0 {
				dropped += i
				s.points = append([]Point(nil), s.points[i:]...)
			}
			if len(s.points) == 0 {
				delete(sh.measurements, name)
			}
		}
		sh.mu.Unlock()
	}
	if dropped > 0 {
		db.qcache.invalidateAll()
	}
	return dropped
}

// Row is one result row of a query.
type Row struct {
	Time   int64
	Values map[string]float64
}

// Result is a query result: the selected field columns and the rows.
type Result struct {
	Measurement string
	Columns     []string
	Rows        []Row
}

// QueryRequest is the request-struct form of a query, mirroring the
// daemon's context-first convention: either a pre-parsed Query or a
// SELECT statement to parse (Query wins when both are set).
type QueryRequest struct {
	// Statement is a SELECT statement, parsed when Query is nil.
	Statement string
	// Query is a pre-parsed query.
	Query *Query
	// Workers bounds the parallel scan pool of an aggregate query;
	// <= 0 selects min(GOMAXPROCS, NumShards). 1 forces the sequential
	// single-goroutine scan.
	Workers int
	// SkipCache bypasses the query-result cache (both lookup and
	// fill) — benchmarking and freshness-critical reads.
	SkipCache bool
}

// Execute runs a parsed query with a background context.
//
// Deprecated: use ExecuteContext with a QueryRequest.
func (db *DB) Execute(q *Query) (*Result, error) {
	return db.ExecuteContext(context.Background(), QueryRequest{Query: q})
}

// QueryString parses and executes a SELECT statement with a background
// context.
//
// Deprecated: use ExecuteContext with a QueryRequest.
func (db *DB) QueryString(stmt string) (*Result, error) {
	return db.ExecuteContext(context.Background(), QueryRequest{Statement: stmt})
}

// ExecuteContext runs one query from its request form. Only the
// stripe owning the queried measurement is locked, so reads never
// block writers of other measurements. Aggregate queries run on the
// parallel windowed engine (aggexec.go) behind the invalidation-
// correct result cache (querycache.go); raw SELECTs materialize rows
// on one goroutine as before.
func (db *DB) ExecuteContext(ctx context.Context, req QueryRequest) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("tsdb: query: %w", err)
	}
	q := req.Query
	if q == nil {
		var err error
		q, err = ParseQuery(req.Statement)
		if err != nil {
			return nil, err
		}
	}
	// Pre-parsed queries arrive unvalidated; hold them to the same
	// shape rules ParseQuery enforces.
	if len(q.Aggregates) > 0 && len(q.Fields) > 0 {
		return nil, fmt.Errorf("tsdb: cannot mix raw fields and aggregates in one SELECT")
	}
	if q.GroupBy > 0 && len(q.Aggregates) == 0 {
		return nil, fmt.Errorf("tsdb: GROUP BY time requires aggregate fields")
	}
	if len(q.Aggregates) > 0 {
		key := q.String()
		if !req.SkipCache {
			if res, ok := db.qcache.get(key); ok {
				return res, nil
			}
		}
		ver := db.qcache.version(q.Measurement)
		res, err := db.execAggregate(ctx, q, req.Workers)
		if err != nil {
			return nil, err
		}
		if !req.SkipCache {
			// The cache keeps its own copy; the caller's result stays
			// private either way.
			db.qcache.put(key, q.Measurement, ver, copyResult(res))
		}
		return res, nil
	}
	sh := db.shardFor(q.Measurement)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s := sh.measurements[q.Measurement]
	res := &Result{Measurement: q.Measurement, Columns: q.Fields}
	if s == nil {
		return res, nil
	}
	selectAll := len(q.Fields) == 1 && q.Fields[0] == "*"
	for _, p := range s.points {
		if q.From != 0 && p.Time < q.From {
			continue
		}
		if q.To != 0 && p.Time > q.To {
			continue
		}
		match := true
		for k, v := range q.TagFilter {
			if p.Tags[k] != v {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		row := Row{Time: p.Time, Values: map[string]float64{}}
		if selectAll {
			for f, v := range p.Fields {
				row.Values[f] = v
			}
		} else {
			any := false
			for _, f := range q.Fields {
				if v, ok := p.Fields[f]; ok {
					row.Values[f] = v
					any = true
				}
			}
			if !any {
				continue
			}
		}
		res.Rows = append(res.Rows, row)
	}
	if selectAll {
		// Stabilise the column list.
		cols := map[string]bool{}
		for _, r := range res.Rows {
			for f := range r.Values {
				cols[f] = true
			}
		}
		res.Columns = res.Columns[:0]
		for f := range cols {
			res.Columns = append(res.Columns, f)
		}
		sort.Strings(res.Columns)
	}
	return res, nil
}

// MeasurementName converts a PCP metric name to the measurement naming
// InfluxDB exports use: dots become underscores, e.g.
// "kernel.percpu.cpu.idle" -> "kernel_percpu_cpu_idle" and
// "perfevent.hwcounters.FP_ARITH:SCALAR_DOUBLE" ->
// "perfevent_hwcounters_FP_ARITH_SCALAR_DOUBLE" (Listing 1).
func MeasurementName(metric string) string {
	r := strings.NewReplacer(".", "_", ":", "_", "-", "_")
	return r.Replace(metric)
}
