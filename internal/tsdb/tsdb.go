// Package tsdb is the time-series database substrate standing in for
// InfluxDB 1.8: measurements hold rows of (timestamp, tag set, field
// values), writes arrive through an API or the line protocol, queries use
// the SELECT subset P-MoVE generates (Listing 3), and retention policies
// bound storage as discussed in §V-B.
//
// Field names carry the instance domain, mirroring how PCP exports
// per-instance metrics to InfluxDB: a per-CPU metric has fields "_cpu0",
// "_cpu1", …, and a per-NUMA-node metric "_node0", "_node1" (see the
// paper's Listing 3 queries).
package tsdb

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"pmove/internal/storage"
)

// Point is one row of a measurement.
type Point struct {
	Measurement string
	Tags        map[string]string
	Fields      map[string]float64
	// Time is nanoseconds since the epoch of the virtual clock.
	Time int64
}

// Validate checks the point is storable: a named measurement, at least
// one field, no empty tag/field keys (or empty tag values), and finite
// field values — NaN/±Inf round-trip through the line protocol but poison
// aggregations, so they are rejected with ErrNonFiniteField.
func (p *Point) Validate() error {
	if p.Measurement == "" {
		return fmt.Errorf("tsdb: point has no measurement")
	}
	if len(p.Fields) == 0 {
		return fmt.Errorf("tsdb: point in %q has no fields", p.Measurement)
	}
	for k, v := range p.Fields {
		if k == "" {
			return fmt.Errorf("%w: point in %q has an empty field name", ErrEmptyKey, p.Measurement)
		}
		if err := validateFinite(p.Measurement, k, v); err != nil {
			return err
		}
	}
	for k, v := range p.Tags {
		if k == "" || v == "" {
			return fmt.Errorf("%w: point in %q has an empty tag key or value", ErrEmptyKey, p.Measurement)
		}
	}
	return nil
}

// series is the rows of one measurement, kept sorted by time.
type series struct {
	points []Point
}

// RetentionPolicy bounds how long data is kept (paper: "we rely on the
// retention policy of InfluxDB which describes for how long the DB keeps
// data").
type RetentionPolicy struct {
	Name     string
	Duration int64 // nanoseconds; 0 = keep forever
}

// DB is a time-series database: in-memory by default (New), optionally
// backed by a write-ahead log + snapshot data directory (Open) so
// acknowledged writes survive a crash.
type DB struct {
	mu           sync.RWMutex
	measurements map[string]*series
	retention    RetentionPolicy
	// store is the durability layer; nil for the zero-config in-memory
	// mode every embedded use defaults to. closed marks a durable DB
	// whose directory was released (Close/Crash): still readable, but
	// writes would be silently volatile, so they are refused.
	store  *storage.Store
	closed bool
	// stats
	pointsWritten uint64
	valuesWritten uint64
}

// New creates an empty database with an infinite retention policy.
func New() *DB {
	return &DB{
		measurements: make(map[string]*series),
		retention:    RetentionPolicy{Name: "autogen"},
	}
}

// SetRetention installs a retention policy; EnforceRetention applies it.
func (db *DB) SetRetention(rp RetentionPolicy) {
	db.mu.Lock()
	db.retention = rp
	db.mu.Unlock()
}

// Retention returns the current policy.
func (db *DB) Retention() RetentionPolicy {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.retention
}

// WritePoint inserts one point. On a durable DB the point is logged to
// the write-ahead log first (per the open fsync policy) — a nil return
// means the write is recoverable, not just resident.
func (db *DB) WritePoint(p Point) error {
	if err := p.Validate(); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return fmt.Errorf("tsdb: write to closed durable DB")
	}
	if db.store != nil {
		line, err := EncodeLine(p)
		if err != nil {
			return err
		}
		if _, err := db.store.Append([]byte(line)); err != nil {
			// Not logged → not acknowledged; the in-memory state must not
			// run ahead of what recovery can reconstruct.
			return fmt.Errorf("tsdb: wal append: %w", err)
		}
	}
	db.insertLocked(p)
	return nil
}

// insertLocked lands one validated point in memory. Callers hold db.mu.
func (db *DB) insertLocked(p Point) {
	s := db.measurements[p.Measurement]
	if s == nil {
		s = &series{}
		db.measurements[p.Measurement] = s
	}
	// Fast path: append if in time order (the common telemetry case).
	if n := len(s.points); n == 0 || s.points[n-1].Time <= p.Time {
		s.points = append(s.points, p)
	} else {
		i := sort.Search(len(s.points), func(i int) bool { return s.points[i].Time > p.Time })
		s.points = append(s.points, Point{})
		copy(s.points[i+1:], s.points[i:])
		s.points[i] = p
	}
	db.pointsWritten++
	db.valuesWritten += uint64(len(p.Fields))
}

// WriteBatch inserts points, stopping at the first error.
func (db *DB) WriteBatch(ps []Point) error {
	for i := range ps {
		if err := db.WritePoint(ps[i]); err != nil {
			return fmt.Errorf("tsdb: batch point %d: %w", i, err)
		}
	}
	return nil
}

// Measurements lists all measurement names, sorted.
func (db *DB) Measurements() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.measurements))
	for m := range db.measurements {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Stats reports cumulative write counts: rows and individual field values.
func (db *DB) Stats() (points, values uint64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.pointsWritten, db.valuesWritten
}

// CountValues returns the number of stored field values in a measurement,
// and how many of them are zero — the accounting Table III reports
// ("Inserted" and "Zeros" columns).
func (db *DB) CountValues(measurement string) (total, zeros uint64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := db.measurements[measurement]
	if s == nil {
		return 0, 0
	}
	for _, p := range s.points {
		for _, v := range p.Fields {
			total++
			if v == 0 {
				zeros++
			}
		}
	}
	return total, zeros
}

// EnforceRetention drops points older than now-Duration. Returns the
// number of points dropped.
func (db *DB) EnforceRetention(now int64) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.retention.Duration <= 0 {
		return 0
	}
	cutoff := now - db.retention.Duration
	dropped := 0
	for name, s := range db.measurements {
		i := sort.Search(len(s.points), func(i int) bool { return s.points[i].Time >= cutoff })
		if i > 0 {
			dropped += i
			s.points = append([]Point(nil), s.points[i:]...)
		}
		if len(s.points) == 0 {
			delete(db.measurements, name)
		}
	}
	return dropped
}

// Row is one result row of a query.
type Row struct {
	Time   int64
	Values map[string]float64
}

// Result is a query result: the selected field columns and the rows.
type Result struct {
	Measurement string
	Columns     []string
	Rows        []Row
}

// Execute runs a parsed query.
func (db *DB) Execute(q *Query) (*Result, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := db.measurements[q.Measurement]
	res := &Result{Measurement: q.Measurement, Columns: q.Fields}
	if s == nil {
		return res, nil
	}
	selectAll := len(q.Fields) == 1 && q.Fields[0] == "*"
	for _, p := range s.points {
		if q.From != 0 && p.Time < q.From {
			continue
		}
		if q.To != 0 && p.Time > q.To {
			continue
		}
		match := true
		for k, v := range q.TagFilter {
			if p.Tags[k] != v {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		row := Row{Time: p.Time, Values: map[string]float64{}}
		if selectAll {
			for f, v := range p.Fields {
				row.Values[f] = v
			}
		} else {
			any := false
			for _, f := range q.Fields {
				if v, ok := p.Fields[f]; ok {
					row.Values[f] = v
					any = true
				}
			}
			if !any {
				continue
			}
		}
		res.Rows = append(res.Rows, row)
	}
	if selectAll {
		// Stabilise the column list.
		cols := map[string]bool{}
		for _, r := range res.Rows {
			for f := range r.Values {
				cols[f] = true
			}
		}
		res.Columns = res.Columns[:0]
		for f := range cols {
			res.Columns = append(res.Columns, f)
		}
		sort.Strings(res.Columns)
	}
	return res, nil
}

// QueryString parses and executes a SELECT statement.
func (db *DB) QueryString(stmt string) (*Result, error) {
	q, err := ParseQuery(stmt)
	if err != nil {
		return nil, err
	}
	return db.Execute(q)
}

// MeasurementName converts a PCP metric name to the measurement naming
// InfluxDB exports use: dots become underscores, e.g.
// "kernel.percpu.cpu.idle" -> "kernel_percpu_cpu_idle" and
// "perfevent.hwcounters.FP_ARITH:SCALAR_DOUBLE" ->
// "perfevent_hwcounters_FP_ARITH_SCALAR_DOUBLE" (Listing 1).
func MeasurementName(metric string) string {
	r := strings.NewReplacer(".", "_", ":", "_", "-", "_")
	return r.Replace(metric)
}
