// Package tsdb is the time-series database substrate standing in for
// InfluxDB 1.8: measurements hold rows of (timestamp, tag set, field
// values), writes arrive through an API or the line protocol, queries use
// the SELECT subset P-MoVE generates (Listing 3), and retention policies
// bound storage as discussed in §V-B.
//
// Field names carry the instance domain, mirroring how PCP exports
// per-instance metrics to InfluxDB: a per-CPU metric has fields "_cpu0",
// "_cpu1", …, and a per-NUMA-node metric "_node0", "_node1" (see the
// paper's Listing 3 queries).
//
// The ingest path is built for parallel hardware: the measurement map is
// striped over lock-sharded partitions (concurrent writers to different
// measurements never serialize), batches commit to the write-ahead log
// as one group-committed record (one fsync per batch, atomic recovery),
// and the wire protocol ships a whole batch per round trip (WRITEB).
//
// Storage is columnar: a point decomposes into its series identity
// (measurement + canonical sorted tag set, interned once per shard) and
// per-field value columns. Each series keeps a mutable head of column
// arrays that seals into immutable Gorilla-compressed blocks of
// blockRows samples (block.go/column.go) — queries scan blocks, block
// footers answer whole-block aggregates without decompression, and
// retention drops whole sealed blocks in O(1).
package tsdb

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"pmove/internal/introspect"
	"pmove/internal/storage"
)

// Point is one row of a measurement.
type Point struct {
	Measurement string
	Tags        map[string]string
	Fields      map[string]float64
	// Time is nanoseconds since the epoch of the virtual clock.
	Time int64
}

// Validate checks the point is storable: a named measurement, at least
// one field, no empty tag/field keys (or empty tag values), and finite
// field values — NaN/±Inf round-trip through the line protocol but poison
// aggregations, so they are rejected with ErrNonFiniteField. (The
// columnar store additionally relies on this: NaN is the in-column
// "field absent" sentinel, which is unambiguous only because no stored
// value can be NaN.)
func (p *Point) Validate() error {
	if p.Measurement == "" {
		return fmt.Errorf("tsdb: point has no measurement")
	}
	if len(p.Fields) == 0 {
		return fmt.Errorf("tsdb: point in %q has no fields", p.Measurement)
	}
	for k, v := range p.Fields {
		if k == "" {
			return fmt.Errorf("%w: point in %q has an empty field name", ErrEmptyKey, p.Measurement)
		}
		if err := validateFinite(p.Measurement, k, v); err != nil {
			return err
		}
	}
	for k, v := range p.Tags {
		if k == "" || v == "" {
			return fmt.Errorf("%w: point in %q has an empty tag key or value", ErrEmptyKey, p.Measurement)
		}
	}
	return nil
}

// RetentionPolicy bounds how long data is kept (paper: "we rely on the
// retention policy of InfluxDB which describes for how long the DB keeps
// data").
type RetentionPolicy struct {
	Name     string
	Duration int64 // nanoseconds; 0 = keep forever
}

// NumShards is the lock-stripe width of the measurement map. Sixteen
// stripes keep independent telemetry shippers (one per instance domain
// or per target) off each other's mutexes while the per-read merge of
// the stats counters stays trivially cheap.
const NumShards = 16

// storageStats is the columnar engine's resident-footprint accounting,
// maintained with atomics because shards mutate it concurrently under
// their own stripe locks. headSlots counts head column cells (rows ×
// field columns, padding included), so headRows*8 + headSlots*8 +
// sealedBytes is the engine's resident data size in bytes.
type storageStats struct {
	headRows     atomic.Int64 // rows currently in mutable heads
	headSlots    atomic.Int64 // float64 cells across head columns
	sealedBytes  atomic.Int64 // compressed bytes across sealed blocks
	sealedRows   atomic.Int64 // rows across sealed blocks
	sealedValues atomic.Int64 // present field values across sealed blocks
	blocks       atomic.Int64 // sealed block count
}

// storageGauges are the introspection handles the stats publish into.
type storageGauges struct {
	bytes, blocks, ratio, head *introspect.Gauge
}

// shard is one lock stripe: a slice of the measurement map plus its
// share of the cumulative write counters, merged on read by Stats.
// The interner and the key/tagKeys scratch are guarded by mu.
type shard struct {
	mu           sync.RWMutex
	measurements map[string]*measurement
	points       uint64 // rows written into this stripe
	values       uint64 // field values written into this stripe

	intern  interner
	keyBuf  []byte
	tagKeys []string
	stats   *storageStats
}

// seriesFor resolves (or creates) the series for a tag set within a
// measurement. The lookup is allocation-free: the candidate key renders
// into shard scratch and probes the map via the string(bytes) idiom.
func (sh *shard) seriesFor(m *measurement, tags map[string]string) *memSeries {
	sh.keyBuf, sh.tagKeys = appendSeriesKey(sh.keyBuf[:0], m.name, tags, sh.tagKeys)
	if s, ok := m.byKey[string(sh.keyBuf)]; ok {
		return s
	}
	ctags := make(map[string]string, len(tags))
	for k, v := range tags {
		ctags[sh.intern.intern(k)] = sh.intern.intern(v)
	}
	s := &memSeries{
		seq:    m.nextSeq,
		key:    string(sh.keyBuf),
		tags:   ctags,
		fields: map[string]int{},
	}
	m.nextSeq++
	m.series = append(m.series, s)
	m.byKey[s.key] = s
	return s
}

// insertSeriesRow lands one row into a series' head, sealing it into a
// compressed block when it reaches blockRows, with footprint accounting.
func (sh *shard) insertSeriesRow(s *memSeries, t int64, fields map[string]float64) {
	st := sh.stats
	preSlots := int64(len(s.names)) * int64(len(s.head.times))
	s.insertRow(t, fields, sh.intern)
	st.headRows.Add(1)
	st.headSlots.Add(int64(len(s.names))*int64(len(s.head.times)) - preSlots)
	if len(s.head.times) >= blockRows {
		rows := int64(len(s.head.times))
		slots := int64(len(s.names)) * rows
		b, err := s.seal()
		if err != nil {
			// Can only mean an engine bug; keep the rows in the head (the
			// next insert retries) rather than lose data.
			return
		}
		st.headRows.Add(-rows)
		st.headSlots.Add(-slots)
		st.sealedBytes.Add(int64(len(b.blob)))
		st.sealedRows.Add(int64(b.rows))
		st.sealedValues.Add(int64(b.values))
		st.blocks.Add(1)
	}
}

// insertLocked lands one validated point. Callers hold sh.mu.
func (sh *shard) insertLocked(p Point) {
	m := sh.measurements[p.Measurement]
	if m == nil {
		name := sh.intern.intern(p.Measurement)
		m = &measurement{name: name, byKey: map[string]*memSeries{}}
		sh.measurements[name] = m
	}
	s := sh.seriesFor(m, p.Tags)
	sh.insertSeriesRow(s, p.Time, p.Fields)
	sh.points++
	sh.values += uint64(len(p.Fields))
}

// insertRun lands every point of ps whose shard index (precomputed in
// idx) equals self, under ONE lock acquisition — the atomic-per-shard
// leg of a batch write. Consecutive points of the same measurement and
// tag set skip the map and series-key lookups, and the stats counters
// are bumped once per run.
func (sh *shard) insertRun(ps []Point, idx []uint32, self uint32) {
	sh.mu.Lock()
	var lastM *measurement
	var rows, vals uint64
	for i := range ps {
		if idx[i] != self {
			continue
		}
		p := &ps[i]
		m := lastM
		if m == nil || p.Measurement != m.name {
			m = sh.measurements[p.Measurement]
			if m == nil {
				name := sh.intern.intern(p.Measurement)
				m = &measurement{name: name, byKey: map[string]*memSeries{}}
				sh.measurements[name] = m
			}
			lastM = m
		}
		s := sh.seriesFor(m, p.Tags)
		sh.insertSeriesRow(s, p.Time, p.Fields)
		rows++
		vals += uint64(len(p.Fields))
	}
	sh.points += rows
	sh.values += vals
	sh.mu.Unlock()
}

// DB is a time-series database: in-memory by default (New), optionally
// backed by a write-ahead log + snapshot data directory (Open) so
// acknowledged writes survive a crash.
type DB struct {
	// mu is the structural lock ordering writers against the durability
	// lifecycle: every mutator holds it SHARED (writers to different
	// shards proceed in parallel, serialized only on their stripe),
	// while Compact/Close/Crash hold it EXCLUSIVELY so the store
	// pointer and the shard contents are stable while a snapshot
	// renders or the store detaches. It also guards retention/store/
	// closed. Lock order: db.mu before any shard.mu.
	mu        sync.RWMutex
	retention RetentionPolicy
	// store is the durability layer; nil for the zero-config in-memory
	// mode every embedded use defaults to. closed marks a durable DB
	// whose directory was released (Close/Crash): still readable, but
	// writes would be silently volatile, so they are refused.
	store  *storage.Store
	closed bool

	shards [NumShards]shard

	// stats is the storage-footprint accounting; gauges (when
	// introspection is attached) receive a publish after every mutation.
	stats  storageStats
	gauges atomic.Pointer[storageGauges]

	// qcache memoizes aggregate query results; writers invalidate it
	// per measurement before acknowledging (see querycache.go).
	qcache *queryCache
}

// New creates an empty database with an infinite retention policy.
func New() *DB {
	db := &DB{retention: RetentionPolicy{Name: "autogen"}, qcache: newQueryCache(0)}
	for i := range db.shards {
		sh := &db.shards[i]
		sh.measurements = make(map[string]*measurement)
		sh.intern = interner{}
		sh.stats = &db.stats
	}
	return db
}

// SetIntrospection attaches the self-observability plane: query-cache
// hit/miss/evict/invalidation counters land in the introspector's
// registry as query.cache.*, and the columnar engine's footprint gauges
// as storage.bytes / storage.blocks / storage.compression.ratio /
// storage.head.samples (all exported with the pmove.self. prefix).
func (db *DB) SetIntrospection(in *introspect.Introspector) {
	db.qcache.setIntrospection(in)
	reg := in.Metrics()
	db.gauges.Store(&storageGauges{
		bytes:  reg.Gauge("storage.bytes"),
		blocks: reg.Gauge("storage.blocks"),
		ratio:  reg.Gauge("storage.compression.ratio"),
		head:   reg.Gauge("storage.head.samples"),
	})
	db.publishStorageGauges()
}

// publishStorageGauges pushes the current footprint accounting into the
// introspection gauges: resident bytes (head columns at 8 bytes/cell +
// compressed blocks), sealed block count, sealed compression ratio
// (uncompressed row bytes ÷ compressed bytes; 0 before the first seal),
// and head sample count. No-op until SetIntrospection attaches gauges.
func (db *DB) publishStorageGauges() {
	g := db.gauges.Load()
	if g == nil {
		return
	}
	headRows := db.stats.headRows.Load()
	headSlots := db.stats.headSlots.Load()
	sealedBytes := db.stats.sealedBytes.Load()
	g.bytes.Set(float64(headRows*8 + headSlots*8 + sealedBytes))
	g.blocks.Set(float64(db.stats.blocks.Load()))
	ratio := 0.0
	if sealedBytes > 0 {
		raw := db.stats.sealedRows.Load()*8 + db.stats.sealedValues.Load()*8
		ratio = float64(raw) / float64(sealedBytes)
	}
	g.ratio.Set(ratio)
	g.head.Set(float64(headRows))
}

// shardIndex stripes a measurement name with FNV-1a.
func shardIndex(measurement string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(measurement); i++ {
		h = (h ^ uint32(measurement[i])) * 16777619
	}
	return h % NumShards
}

// shardFor returns the stripe owning a measurement.
func (db *DB) shardFor(measurement string) *shard {
	return &db.shards[shardIndex(measurement)]
}

// SetRetention installs a retention policy; EnforceRetention applies it.
func (db *DB) SetRetention(rp RetentionPolicy) {
	db.mu.Lock()
	db.retention = rp
	db.mu.Unlock()
}

// Retention returns the current policy.
func (db *DB) Retention() RetentionPolicy {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.retention
}

// WritePoint inserts one point. On a durable DB the point is logged to
// the write-ahead log first (per the open fsync policy) — a nil return
// means the write is recoverable, not just resident.
func (db *DB) WritePoint(p Point) error {
	if err := p.Validate(); err != nil {
		return err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return fmt.Errorf("tsdb: write to closed durable DB")
	}
	if db.store != nil {
		line, err := EncodeLine(p)
		if err != nil {
			return err
		}
		if _, err := db.store.Append([]byte(line)); err != nil {
			// Not logged → not acknowledged; the in-memory state must not
			// run ahead of what recovery can reconstruct.
			return fmt.Errorf("tsdb: wal append: %w", err)
		}
	}
	sh := db.shardFor(p.Measurement)
	sh.mu.Lock()
	sh.insertLocked(p)
	sh.mu.Unlock()
	// Invalidate after the point is visible and before acknowledging:
	// a cache hit must never be older than an acknowledged write.
	db.qcache.invalidate(p.Measurement)
	db.publishStorageGauges()
	return nil
}

// BatchError reports a rejected batch write: the offending point's
// index and how many points of the batch were applied. The engine
// validates the whole batch before touching the log or memory, so
// Applied is always 0 — a batch lands atomically or not at all — but
// the field is part of the contract so callers never have to assume it.
type BatchError struct {
	// Index is the position of the offending point in the batch.
	Index int
	// Applied is how many points of the batch landed before the
	// failure (0 under the validate-first engine).
	Applied int
	// Err is the underlying rejection.
	Err error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("tsdb: batch point %d (%d applied): %v", e.Index, e.Applied, e.Err)
}

func (e *BatchError) Unwrap() error { return e.Err }

// WriteBatch inserts a batch of points with a background context.
//
// Deprecated: use WriteBatchContext.
func (db *DB) WriteBatch(ps []Point) error {
	return db.WriteBatchContext(context.Background(), ps)
}

// WriteBatchContext inserts a batch atomically: every point is
// validated up front (a rejection returns a *BatchError with Applied ==
// 0 and no state change), a durable DB commits the whole batch as ONE
// group-committed WAL record (a single fsync amortized over the batch;
// recovery replays the batch frame entirely or — when the crash tore
// it — not at all), and the in-memory inserts take each shard lock once
// per batch rather than once per point. Points of different
// measurements may interleave with concurrent writers, but a batch is
// atomic per shard and all-or-nothing against crashes.
func (db *DB) WriteBatchContext(ctx context.Context, ps []Point) error {
	if len(ps) == 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("tsdb: batch: %w", err)
	}
	for i := range ps {
		if err := ps[i].Validate(); err != nil {
			return &BatchError{Index: i, Err: err}
		}
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return fmt.Errorf("tsdb: write to closed durable DB")
	}
	if db.store != nil {
		if err := db.appendBatchLocked(ps); err != nil {
			return err
		}
	}
	// Precompute each point's stripe, then land the batch one shard at a
	// time — one lock acquisition per touched stripe, input order
	// preserved within each.
	idx := make([]uint32, len(ps))
	var touched [NumShards]bool
	for i := range ps {
		idx[i] = shardIndex(ps[i].Measurement)
		touched[idx[i]] = true
	}
	for s := uint32(0); s < NumShards; s++ {
		if touched[s] {
			db.shards[s].insertRun(ps, idx, s)
		}
	}
	// Invalidate every written measurement after the batch is visible
	// and before acknowledging (deduplicated — batches repeat names).
	seen := make(map[string]struct{}, 4)
	for i := range ps {
		if _, ok := seen[ps[i].Measurement]; ok {
			continue
		}
		seen[ps[i].Measurement] = struct{}{}
		db.qcache.invalidate(ps[i].Measurement)
	}
	db.publishStorageGauges()
	return nil
}

// appendBatchLocked group-commits a validated batch to the WAL as one
// record (plain line body for a single point, batch envelope
// otherwise). Callers hold db.mu shared with store non-nil.
func (db *DB) appendBatchLocked(ps []Point) error {
	if len(ps) == 1 {
		line, err := EncodeLine(ps[0])
		if err != nil {
			return &BatchError{Index: 0, Err: err}
		}
		if _, err := db.store.Append([]byte(line)); err != nil {
			return &BatchError{Index: 0, Err: fmt.Errorf("tsdb: wal append: %w", err)}
		}
		return nil
	}
	bodies := make([][]byte, len(ps))
	for i := range ps {
		line, err := EncodeLine(ps[i])
		if err != nil {
			return &BatchError{Index: i, Err: err}
		}
		bodies[i] = []byte(line)
	}
	if _, err := db.store.Append(storage.EncodeBatchBody(bodies)); err != nil {
		return &BatchError{Index: 0, Err: fmt.Errorf("tsdb: wal append: %w", err)}
	}
	return nil
}

// Measurements lists all measurement names, sorted.
func (db *DB) Measurements() []string {
	var out []string
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		for m := range sh.measurements {
			out = append(out, m)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Stats reports cumulative write counts: rows and individual field
// values, merged across the shard stripes on read.
func (db *DB) Stats() (points, values uint64) {
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		points += sh.points
		values += sh.values
		sh.mu.RUnlock()
	}
	return points, values
}

// CountValues returns the number of stored field values in a measurement,
// and how many of them are zero — the accounting Table III reports
// ("Inserted" and "Zeros" columns). Sealed blocks answer from their
// footers without decompression; only the mutable heads are scanned.
func (db *DB) CountValues(measurement string) (total, zeros uint64) {
	sh := db.shardFor(measurement)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	m := sh.measurements[measurement]
	if m == nil {
		return 0, 0
	}
	for _, s := range m.series {
		for _, b := range s.blocks {
			for i := range b.fields {
				total += b.fields[i].count
				zeros += b.fields[i].zeros
			}
		}
		for _, col := range s.head.cols {
			for _, v := range col {
				if v == v { // non-NaN: a present value
					total++
					if v == 0 {
						zeros++
					}
				}
			}
		}
	}
	return total, zeros
}

// EnforceRetention drops points older than now-Duration. Returns the
// number of points dropped. Sealed blocks wholly before the cutoff are
// dropped in O(1) each — no decompression, just unlinking — and at most
// one straddling block per series is rewritten.
func (db *DB) EnforceRetention(now int64) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.retention.Duration <= 0 {
		return 0
	}
	cutoff := now - db.retention.Duration
	dropped := 0
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.Lock()
		for name, m := range sh.measurements {
			kept := m.series[:0]
			for _, s := range m.series {
				dropped += sh.retainSeries(s, cutoff)
				if len(s.blocks) == 0 && len(s.head.times) == 0 {
					delete(m.byKey, s.key)
					continue
				}
				kept = append(kept, s)
			}
			for j := len(kept); j < len(m.series); j++ {
				m.series[j] = nil
			}
			m.series = kept
			if len(m.series) == 0 {
				delete(sh.measurements, name)
			}
		}
		sh.mu.Unlock()
	}
	if dropped > 0 {
		db.qcache.invalidateAll()
	}
	db.publishStorageGauges()
	return dropped
}

// retainSeries applies a retention cutoff to one series: whole sealed
// blocks before the cutoff unlink in O(1), the (at most one) straddling
// block is rewritten, and the head drops its expired prefix. Returns
// rows dropped. Callers hold sh.mu.
func (sh *shard) retainSeries(s *memSeries, cutoff int64) int {
	st := sh.stats
	dropped := 0
	kept := s.blocks[:0]
	for _, b := range s.blocks {
		switch {
		case b.maxT < cutoff: // wholly expired: O(1) drop
			dropped += b.rows
			st.sealedBytes.Add(-int64(len(b.blob)))
			st.sealedRows.Add(-int64(b.rows))
			st.sealedValues.Add(-int64(b.values))
			st.blocks.Add(-1)
		case b.minT >= cutoff: // wholly live
			kept = append(kept, b)
		default: // straddles: rewrite the surviving suffix
			nb, removed, err := shrinkBlock(b, cutoff)
			if err != nil || removed == 0 {
				// Decode failure would mean an engine bug; keep the data.
				kept = append(kept, b)
				continue
			}
			dropped += removed
			st.sealedBytes.Add(int64(len(nb.blob)) - int64(len(b.blob)))
			st.sealedRows.Add(int64(nb.rows) - int64(b.rows))
			st.sealedValues.Add(int64(nb.values) - int64(b.values))
			kept = append(kept, nb)
		}
	}
	for i := len(kept); i < len(s.blocks); i++ {
		s.blocks[i] = nil
	}
	s.blocks = kept
	h := &s.head
	if n := len(h.times); n > 0 && h.times[0] < cutoff {
		i := sort.Search(n, func(i int) bool { return h.times[i] >= cutoff })
		dropped += i
		copy(h.times, h.times[i:])
		h.times = h.times[:n-i]
		for ci := range h.cols {
			copy(h.cols[ci], h.cols[ci][i:])
			h.cols[ci] = h.cols[ci][:n-i]
		}
		st.headRows.Add(-int64(i))
		st.headSlots.Add(-int64(i) * int64(len(s.names)))
	}
	return dropped
}

// shrinkBlock re-encodes the rows of b at or after cutoff into a new
// block, returning it and the number of rows removed. The caller has
// established minT < cutoff <= maxT, so the suffix is never empty.
func shrinkBlock(b *block, cutoff int64) (*block, int, error) {
	times, err := b.decodeTimes(nil)
	if err != nil {
		return nil, 0, err
	}
	idx := sort.Search(len(times), func(i int) bool { return times[i] >= cutoff })
	if idx == 0 {
		return b, 0, nil
	}
	names := make([]string, len(b.fields))
	cols := make([][]float64, len(b.fields))
	for i := range b.fields {
		names[i] = b.fields[i].name
		col, err := b.decodeField(i, nil)
		if err != nil {
			return nil, 0, err
		}
		cols[i] = col[idx:]
	}
	nb, err := encodeBlock(times[idx:], names, cols)
	if err != nil {
		return nil, 0, err
	}
	return nb, idx, nil
}

// Row is one result row of a query.
type Row struct {
	Time   int64
	Values map[string]float64
}

// Result is a query result: the selected field columns and the rows.
type Result struct {
	Measurement string
	Columns     []string
	Rows        []Row
}

// QueryRequest is the request-struct form of a query, mirroring the
// daemon's context-first convention: either a pre-parsed Query or a
// SELECT statement to parse (Query wins when both are set).
type QueryRequest struct {
	// Statement is a SELECT statement, parsed when Query is nil.
	Statement string
	// Query is a pre-parsed query.
	Query *Query
	// Workers bounds the parallel scan pool of an aggregate query;
	// <= 0 selects min(GOMAXPROCS, NumShards). 1 forces the sequential
	// single-goroutine scan.
	Workers int
	// SkipCache bypasses the query-result cache (both lookup and
	// fill) — benchmarking and freshness-critical reads.
	SkipCache bool
}

// Execute runs a parsed query with a background context.
//
// Deprecated: use ExecuteContext with a QueryRequest.
func (db *DB) Execute(q *Query) (*Result, error) {
	return db.ExecuteContext(context.Background(), QueryRequest{Query: q})
}

// QueryString parses and executes a SELECT statement with a background
// context.
//
// Deprecated: use ExecuteContext with a QueryRequest.
func (db *DB) QueryString(stmt string) (*Result, error) {
	return db.ExecuteContext(context.Background(), QueryRequest{Statement: stmt})
}

// ExecuteContext runs one query from its request form. Only the
// stripe owning the queried measurement is locked, so reads never
// block writers of other measurements. Aggregate queries run on the
// parallel block-aware engine (aggexec.go) behind the invalidation-
// correct result cache (querycache.go); raw SELECTs merge the sorted
// runs (sealed blocks + heads) of every matching series.
func (db *DB) ExecuteContext(ctx context.Context, req QueryRequest) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("tsdb: query: %w", err)
	}
	q := req.Query
	if q == nil {
		var err error
		q, err = ParseQuery(req.Statement)
		if err != nil {
			return nil, err
		}
	}
	// Pre-parsed queries arrive unvalidated; hold them to the same
	// shape rules ParseQuery enforces.
	if len(q.Aggregates) > 0 && len(q.Fields) > 0 {
		return nil, fmt.Errorf("tsdb: cannot mix raw fields and aggregates in one SELECT")
	}
	if q.GroupBy > 0 && len(q.Aggregates) == 0 {
		return nil, fmt.Errorf("tsdb: GROUP BY time requires aggregate fields")
	}
	if len(q.Aggregates) > 0 {
		key := q.String()
		if !req.SkipCache {
			if res, ok := db.qcache.get(key); ok {
				return res, nil
			}
		}
		ver := db.qcache.version(q.Measurement)
		res, err := db.execAggregate(ctx, q, req.Workers)
		if err != nil {
			return nil, err
		}
		if !req.SkipCache {
			// The cache keeps its own copy; the caller's result stays
			// private either way.
			db.qcache.put(key, q.Measurement, ver, copyResult(res))
		}
		return res, nil
	}
	return db.execRaw(q)
}

// rawRun is one time-sorted source of rows for the raw SELECT merge: a
// decoded sealed block or a series head, restricted to the query's time
// bounds and to the selected columns it actually carries.
type rawRun struct {
	times    []int64
	names    []string
	cols     [][]float64
	pos, end int
}

// timeBounds binary-searches the [lo, hi) index span of times matching
// the query's From/To bounds (0 = unbounded, as everywhere else).
func timeBounds(times []int64, from, to int64) (lo, hi int) {
	lo, hi = 0, len(times)
	if from != 0 {
		lo = sort.Search(len(times), func(i int) bool { return times[i] >= from })
	}
	if to != 0 {
		hi = sort.Search(len(times), func(i int) bool { return times[i] > to })
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// blockRawRun decodes the selected columns of a sealed block into a
// merge run. A block carrying none of the selected fields yields an
// empty run — none of its rows could contribute a row.
func blockRawRun(b *block, q *Query, selectAll bool) (rawRun, error) {
	var run rawRun
	if selectAll {
		for fi := range b.fields {
			col, err := b.decodeField(fi, nil)
			if err != nil {
				return run, err
			}
			run.names = append(run.names, b.fields[fi].name)
			run.cols = append(run.cols, col)
		}
	} else {
		for _, f := range q.Fields {
			fi := b.fieldIndex(f)
			if fi < 0 {
				continue
			}
			col, err := b.decodeField(fi, nil)
			if err != nil {
				return run, err
			}
			run.names = append(run.names, f)
			run.cols = append(run.cols, col)
		}
		if len(run.names) == 0 {
			return run, nil
		}
	}
	times, err := b.decodeTimes(nil)
	if err != nil {
		return run, err
	}
	run.times = times
	run.pos, run.end = timeBounds(times, q.From, q.To)
	return run, nil
}

// headRawRun builds a merge run over a series head by aliasing its
// column arrays — safe for the duration of the shard read lock.
func headRawRun(s *memSeries, q *Query, selectAll bool) rawRun {
	var run rawRun
	if selectAll {
		run.names = s.names
		run.cols = s.head.cols
	} else {
		for _, f := range q.Fields {
			if ci, ok := s.fields[f]; ok {
				run.names = append(run.names, f)
				run.cols = append(run.cols, s.head.cols[ci])
			}
		}
		if len(run.names) == 0 {
			return run
		}
	}
	run.times = s.head.times
	run.pos, run.end = timeBounds(run.times, q.From, q.To)
	return run
}

// appendRawRow renders the run's current row (skipping it when no
// selected field is present) and advances the cursor.
func appendRawRow(res *Result, r *rawRun) {
	t := r.times[r.pos]
	vals := make(map[string]float64, len(r.names))
	for ci, name := range r.names {
		if v := r.cols[ci][r.pos]; v == v {
			vals[name] = v
		}
	}
	r.pos++
	if len(vals) == 0 {
		return
	}
	res.Rows = append(res.Rows, Row{Time: t, Values: vals})
}

// runHeapDown restores the min-heap property from index i. The heap
// orders run indices by (current time, run index), so equal timestamps
// resolve deterministically: series creation order, then block order,
// then head — which within one series is ingest order.
func runHeapDown(h []int, i int, runs []rawRun) {
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && runLess(runs, h[l], h[small]) {
			small = l
		}
		if r < len(h) && runLess(runs, h[r], h[small]) {
			small = r
		}
		if small == i {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}

func runLess(runs []rawRun, a, b int) bool {
	ta, tb := runs[a].times[runs[a].pos], runs[b].times[runs[b].pos]
	return ta < tb || (ta == tb && a < b)
}

// execRaw materializes a raw SELECT: per matching series, the
// overlapping sealed blocks decode into sorted runs and the head joins
// as a final run; a k-way merge emits rows in (time, series, ingest)
// order — the same order the row store produced.
func (db *DB) execRaw(q *Query) (*Result, error) {
	sh := db.shardFor(q.Measurement)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	res := &Result{Measurement: q.Measurement, Columns: q.Fields}
	m := sh.measurements[q.Measurement]
	if m == nil {
		return res, nil
	}
	selectAll := len(q.Fields) == 1 && q.Fields[0] == "*"
	var runs []rawRun
	for _, s := range m.series {
		if !s.matchTags(q.TagFilter) {
			continue
		}
		for _, b := range s.blocks {
			if (q.From != 0 && b.maxT < q.From) || (q.To != 0 && b.minT > q.To) {
				continue
			}
			run, err := blockRawRun(b, q, selectAll)
			if err != nil {
				return nil, err
			}
			if run.end > run.pos {
				runs = append(runs, run)
			}
		}
		if len(s.head.times) > 0 {
			if run := headRawRun(s, q, selectAll); run.end > run.pos {
				runs = append(runs, run)
			}
		}
	}
	total := 0
	for i := range runs {
		total += runs[i].end - runs[i].pos
	}
	if total > 0 {
		res.Rows = make([]Row, 0, total)
	}
	switch len(runs) {
	case 0:
	case 1:
		r := &runs[0]
		for r.pos < r.end {
			appendRawRow(res, r)
		}
	default:
		h := make([]int, len(runs))
		for i := range runs {
			h[i] = i
		}
		for i := len(h)/2 - 1; i >= 0; i-- {
			runHeapDown(h, i, runs)
		}
		for len(h) > 0 {
			r := &runs[h[0]]
			appendRawRow(res, r)
			if r.pos >= r.end {
				h[0] = h[len(h)-1]
				h = h[:len(h)-1]
			}
			if len(h) > 0 {
				runHeapDown(h, 0, runs)
			}
		}
	}
	if selectAll {
		// Stabilise the column list.
		cols := map[string]bool{}
		for _, r := range res.Rows {
			for f := range r.Values {
				cols[f] = true
			}
		}
		res.Columns = res.Columns[:0]
		for f := range cols {
			res.Columns = append(res.Columns, f)
		}
		sort.Strings(res.Columns)
	}
	return res, nil
}

// MeasurementName converts a PCP metric name to the measurement naming
// InfluxDB exports use: dots become underscores, e.g.
// "kernel.percpu.cpu.idle" -> "kernel_percpu_cpu_idle" and
// "perfevent.hwcounters.FP_ARITH:SCALAR_DOUBLE" ->
// "perfevent_hwcounters_FP_ARITH_SCALAR_DOUBLE" (Listing 1).
func MeasurementName(metric string) string {
	r := strings.NewReplacer(".", "_", ":", "_", "-", "_")
	return r.Replace(metric)
}
