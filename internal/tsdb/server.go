package tsdb

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
)

// Server exposes a DB over TCP with a line-oriented protocol:
//
//	WRITE <line protocol>     -> "OK" | "ERR <msg>"
//	QUERY <select statement>  -> one JSON document with the Result | "ERR"
//	PING                      -> "PONG"
//
// The host runs one of these for the target's telemetry shippers (Figure
// 3: "the host runs ... InfluxDB").
type Server struct {
	db *DB

	mu    sync.Mutex
	ln    net.Listener
	done  chan struct{}
	conns map[net.Conn]bool
	wg    sync.WaitGroup
}

// NewServer wraps a DB.
func NewServer(db *DB) *Server {
	return &Server{db: db, conns: map[net.Conn]bool{}}
}

// Listen starts serving on addr ("127.0.0.1:0" picks a free port) and
// returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("tsdb: listen: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.done = make(chan struct{})
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		line := sc.Text()
		cmd, rest, _ := strings.Cut(line, " ")
		switch strings.ToUpper(cmd) {
		case "PING":
			fmt.Fprintln(w, "PONG")
		case "WRITE":
			p, err := DecodeLine(rest)
			if err == nil {
				err = s.db.WritePoint(p)
			}
			if err != nil {
				fmt.Fprintf(w, "ERR %v\n", err)
			} else {
				fmt.Fprintln(w, "OK")
			}
		case "QUERY":
			res, err := s.db.QueryString(rest)
			if err != nil {
				fmt.Fprintf(w, "ERR %v\n", err)
			} else {
				b, merr := json.Marshal(res)
				if merr != nil {
					fmt.Fprintf(w, "ERR %v\n", merr)
				} else {
					w.Write(b)
					w.WriteByte('\n')
				}
			}
		default:
			fmt.Fprintf(w, "ERR unknown command %q\n", cmd)
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// Close stops the server and waits for connections to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
		s.ln = nil
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// Client is a minimal client for the Server protocol.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
}

// Dial connects to a Server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tsdb: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, r: bufio.NewReader(conn)}, nil
}

// Write ships one point.
func (c *Client) Write(p Point) error {
	line, err := EncodeLine(p)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := fmt.Fprintf(c.conn, "WRITE %s\n", line); err != nil {
		return err
	}
	resp, err := c.r.ReadString('\n')
	if err != nil {
		return err
	}
	resp = strings.TrimSpace(resp)
	if resp != "OK" {
		return fmt.Errorf("tsdb: write rejected: %s", resp)
	}
	return nil
}

// Query runs a SELECT statement remotely.
func (c *Client) Query(stmt string) (*Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := fmt.Fprintf(c.conn, "QUERY %s\n", stmt); err != nil {
		return nil, err
	}
	resp, err := c.r.ReadString('\n')
	if err != nil {
		return nil, err
	}
	resp = strings.TrimSpace(resp)
	if strings.HasPrefix(resp, "ERR") {
		return nil, fmt.Errorf("tsdb: query rejected: %s", resp)
	}
	var res Result
	if err := json.Unmarshal([]byte(resp), &res); err != nil {
		return nil, fmt.Errorf("tsdb: bad query response: %w", err)
	}
	return &res, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := fmt.Fprintln(c.conn, "PING"); err != nil {
		return err
	}
	resp, err := c.r.ReadString('\n')
	if err != nil {
		return err
	}
	if strings.TrimSpace(resp) != "PONG" {
		return fmt.Errorf("tsdb: unexpected ping response %q", resp)
	}
	return nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
