package tsdb

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"pmove/internal/introspect"
	"pmove/internal/introspect/logbuf"
	"pmove/internal/resilience"
)

// MaxBatchPoints bounds one WRITEB frame. The bound keeps a malicious
// or corrupted header from committing the server to drain an unbounded
// body; an over-limit batch is rejected fatally (connection closed)
// because the server will not read its body.
const MaxBatchPoints = 4096

// dedupWindowSize is how many applied batch tokens the server
// remembers for retry dedup (see resilience.DedupWindow).
const dedupWindowSize = 1024

// Server exposes a DB over TCP with a line-oriented protocol:
//
//	WRITE <line protocol>     -> "OK" | "ERR <msg>"
//	WRITEB <n> [id=<tok>]     -> (after n body lines) "OK <n>" | "ERR <msg>"
//	QUERY <select statement>  -> one JSON document with the Result | "ERR"
//	PING                      -> "PONG"
//
// WRITEB is the batched write frame: the header line announces n, the
// next n lines are one point of line protocol each, and the server
// answers with ONE ack for the whole batch — a monitoring tick costs
// one round-trip instead of |instance domain|. An optional id= token
// makes the batch idempotent under client retry. The header's bounds
// are load-bearing for stream sync: a header with a valid n (1..
// MaxBatchPoints) ALWAYS consumes exactly n body lines before the ack,
// even when a body line is rejected; an invalid header gets an ERR and
// the connection is closed, because the server cannot know how many
// lines the client will send next. Like WRITE/QUERY, the header may
// carry a leading traceparent= token.
//
// The host runs one of these for the target's telemetry shippers (Figure
// 3: "the host runs ... InfluxDB").
type Server struct {
	db    *DB
	dedup *resilience.DedupWindow

	mu    sync.Mutex
	ln    net.Listener
	done  chan struct{}
	conns map[net.Conn]bool
	wg    sync.WaitGroup
	obs   func(cmd string, err error)
	in    *introspect.Introspector
	log   *logbuf.Logger
	slow  time.Duration
}

// NewServer wraps a DB.
func NewServer(db *DB) *Server {
	return &Server{
		db:    db,
		dedup: resilience.NewDedupWindow(dedupWindowSize),
		conns: map[net.Conn]bool{},
	}
}

// SetObserver installs a per-command hook called after every handled
// request with the command name ("ping"/"write"/"query"/"unknown") and
// its outcome. The daemon wires this to the self-observability registry;
// a function type (rather than an introspect dependency) keeps the
// import direction tsdb ← introspect, since the self-metrics exporter
// writes tsdb points.
func (s *Server) SetObserver(fn func(cmd string, err error)) {
	s.mu.Lock()
	s.obs = fn
	s.mu.Unlock()
}

// SetTracing attaches an introspector whose tracer records server-side
// spans (tsdb.server.write with parse/queue/insert children, ...). When
// an incoming frame carries a traceparent tag, the server spans join the
// caller's distributed trace; untagged frames open local root spans. A
// nil introspector (the default) disables server tracing.
func (s *Server) SetTracing(in *introspect.Introspector) {
	s.mu.Lock()
	s.in = in
	s.mu.Unlock()
	// The served DB's query-cache counters belong to the same
	// self-observability plane (pmove.self.query.cache.*).
	s.db.SetIntrospection(in)
}

func (s *Server) tracing() *introspect.Introspector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.in
}

// SetLogger attaches a structured log ring (conventionally a
// "tsdb.server" component child). Ops slower than slowThreshold emit a
// warn record carrying the op's wire traceparent, so a slow server-side
// op joins the client span that carried it on the same 128-bit trace
// id; a zero threshold logs every op, a negative one disables the
// slow-op path (failed ops are still logged). A nil logger disables
// everything.
func (s *Server) SetLogger(lg *logbuf.Logger, slowThreshold time.Duration) {
	s.mu.Lock()
	s.log = lg
	s.slow = slowThreshold
	s.mu.Unlock()
}

func (s *Server) logger() (*logbuf.Logger, time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log, s.slow
}

// logOp emits the per-op structured record: errors always, slow ops
// when the threshold is met. sctx is the span-carrying context (the
// record's trace identity); wireCtx is the frame context whose
// traceparent field ties the record back to the bytes on the wire.
func (s *Server) logOp(sctx, wireCtx context.Context, cmd string, arrivalNanos int64, err error) {
	lg, slow := s.logger()
	if lg == nil {
		return
	}
	elapsed := time.Duration(time.Now().UnixNano() - arrivalNanos)
	if err != nil {
		lg.Error(sctx, "op failed", "cmd", cmd, "duration", elapsed.String(), "error", err.Error())
		return
	}
	if slow < 0 || elapsed < slow {
		return
	}
	kv := []string{"cmd", cmd, "duration", elapsed.String()}
	if tp := introspect.TraceparentFromContext(wireCtx); tp != "" {
		kv = append(kv, "traceparent", tp)
	}
	lg.Warn(sctx, "slow op", kv...)
}

func (s *Server) observe(cmd string, err error) {
	s.mu.Lock()
	fn := s.obs
	s.mu.Unlock()
	if fn != nil {
		fn(cmd, err)
	}
}

// Listen starts serving on addr ("127.0.0.1:0" picks a free port) and
// returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("tsdb: listen: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.done = make(chan struct{})
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		line := sc.Text()
		arrival := time.Now().UnixNano()
		cmd, rest, _ := strings.Cut(line, " ")
		switch strings.ToUpper(cmd) {
		case "PING":
			fmt.Fprintln(w, "PONG")
			s.observe("ping", nil)
		case "WRITE":
			s.handleWrite(rest, arrival, w)
		case "WRITEB":
			if !s.handleWriteBatch(rest, arrival, sc, w) {
				// Fatal frame error: the server cannot trust how many
				// body lines follow, so it answers (if it can) and hangs
				// up rather than desynchronise the stream. The resilient
				// client re-verifies sync with PING on reconnect.
				w.Flush()
				return
			}
		case "QUERY":
			s.handleQuery(rest, arrival, w)
		default:
			fmt.Fprintf(w, "ERR unknown command %q\n", cmd)
			s.observe("unknown", fmt.Errorf("unknown command %q", cmd))
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
	// A scanner error (most commonly a line over the buffer cap) used to
	// kill the session silently; answer before hanging up so the client
	// sees a protocol error instead of a bare EOF.
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			fmt.Fprintln(w, "ERR line too long")
		} else {
			fmt.Fprintf(w, "ERR %v\n", err)
		}
		w.Flush()
	}
}

// frameContext strips an optional leading "traceparent=<tp> " token off
// a frame body and returns a context rooted in the sender's span (or a
// plain background context for untagged / malformed tags — malformed
// tags are stripped but never corrupt parentage). Untagged frames from
// pre-traceparent clients are therefore handled exactly as before.
func frameContext(rest string) (context.Context, string) {
	remote, body, tagged := introspect.CutWireField(rest)
	ctx := context.Background()
	if tagged && remote.Valid() {
		ctx = introspect.ContextWithSpanContext(ctx, remote)
	}
	return ctx, body
}

// handleWrite decodes and inserts one WRITE frame, tracing the
// queue/parse/insert phases under a tsdb.server.write span backdated to
// frame arrival so queue time (arrival → processing) is visible.
func (s *Server) handleWrite(rest string, arrivalNanos int64, w *bufio.Writer) {
	ctx, body := frameContext(rest)
	in := s.tracing()
	wctx, op := in.StartSpanAt(ctx, "tsdb.server.write", arrivalNanos)
	_, qs := in.StartSpanAt(wctx, "tsdb.server.queue", arrivalNanos)
	qs.End(nil)
	_, ps := in.StartSpan(wctx, "tsdb.server.parse")
	p, err := DecodeLine(body)
	ps.End(err)
	if err == nil {
		_, is := in.StartSpan(wctx, "tsdb.server.insert")
		err = s.db.WritePoint(p)
		is.End(err)
	}
	op.End(err)
	if err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
	} else {
		fmt.Fprintln(w, "OK")
	}
	s.logOp(wctx, ctx, "write", arrivalNanos, err)
	s.observe("write", err)
}

// handleWriteBatch serves one WRITEB frame: header → n body lines →
// one ack. Returns false on a fatal frame error (invalid header, or
// the connection dying mid-body) after which the caller must close the
// connection; true means the stream is in sync regardless of whether
// the batch was accepted. The queue/parse/insert phases trace under a
// tsdb.server.writeb span backdated to header arrival.
func (s *Server) handleWriteBatch(rest string, arrivalNanos int64, sc *bufio.Scanner, w *bufio.Writer) bool {
	ctx, body := frameContext(rest)
	in := s.tracing()
	wctx, op := in.StartSpanAt(ctx, "tsdb.server.writeb", arrivalNanos)
	_, qs := in.StartSpanAt(wctx, "tsdb.server.queue", arrivalNanos)
	qs.End(nil)

	nStr, opts, _ := strings.Cut(body, " ")
	n, err := strconv.Atoi(nStr)
	if err != nil || n <= 0 || n > MaxBatchPoints {
		err = fmt.Errorf("tsdb: bad batch header %q (want 1..%d points)", body, MaxBatchPoints)
		op.End(err)
		fmt.Fprintf(w, "ERR %v\n", err)
		s.logOp(wctx, ctx, "writeb", arrivalNanos, err)
		s.observe("writeb", err)
		return false
	}
	var token string
	if v, ok := strings.CutPrefix(strings.TrimSpace(opts), "id="); ok {
		token = v
	}

	// The header is valid: from here the body is ALWAYS drained whole so
	// a rejection leaves the stream in sync.
	lines := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if !sc.Scan() {
			err = fmt.Errorf("tsdb: connection lost %d/%d lines into batch body", i, n)
			op.End(err)
			s.logOp(wctx, ctx, "writeb", arrivalNanos, err)
			s.observe("writeb", err)
			return false
		}
		lines = append(lines, sc.Text())
	}

	_, ps := in.StartSpan(wctx, "tsdb.server.parse")
	points := make([]Point, len(lines))
	for i, line := range lines {
		p, derr := DecodeLine(line)
		if derr != nil {
			err = fmt.Errorf("tsdb: batch point %d: %w", i, derr)
			break
		}
		points[i] = p
	}
	ps.End(err)

	if err == nil && token != "" && s.dedup.Seen(token) {
		// Retry of an applied batch: acknowledge without re-inserting.
		op.End(nil)
		fmt.Fprintf(w, "OK %d\n", n)
		s.observe("writeb", nil)
		return true
	}
	if err == nil {
		_, is := in.StartSpan(wctx, "tsdb.server.insert")
		err = s.db.WriteBatchContext(wctx, points)
		is.End(err)
		if err == nil && token != "" {
			// Record only after the apply succeeded: a failed batch must
			// stay retryable.
			s.dedup.Record(token)
		}
	}
	op.End(err)
	if err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
	} else {
		fmt.Fprintf(w, "OK %d\n", n)
	}
	s.logOp(wctx, ctx, "writeb", arrivalNanos, err)
	s.observe("writeb", err)
	return true
}

// handleQuery parses and executes one QUERY frame with parse/exec child
// spans under tsdb.server.query.
func (s *Server) handleQuery(rest string, arrivalNanos int64, w *bufio.Writer) {
	ctx, body := frameContext(rest)
	in := s.tracing()
	qctx, op := in.StartSpanAt(ctx, "tsdb.server.query", arrivalNanos)
	_, ps := in.StartSpan(qctx, "tsdb.server.parse")
	q, err := ParseQuery(body)
	ps.End(err)
	var res *Result
	if err == nil {
		var es *introspect.ActiveSpan
		var ectx context.Context
		ectx, es = in.StartSpan(qctx, "tsdb.server.exec")
		res, err = s.db.ExecuteContext(ectx, QueryRequest{Query: q})
		es.End(err)
	}
	op.End(err)
	if err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
	} else {
		b, merr := json.Marshal(res)
		if merr != nil {
			fmt.Fprintf(w, "ERR %v\n", merr)
			err = merr
		} else {
			w.Write(b)
			w.WriteByte('\n')
		}
	}
	s.logOp(qctx, ctx, "query", arrivalNanos, err)
	s.observe("query", err)
}

// Close stops the server: the listener and idle connections are torn
// down, every in-flight handler drains (an accepted WRITE finishes its
// insert before the DB is considered final), and the DB's WAL is
// flushed — so a graceful shutdown never loses an acknowledged point
// even under fsync=interval/never.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
		s.ln = nil
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	// Flush-on-close barrier: every handleWrite above has completed its
	// WAL append; one sync makes the whole accepted prefix durable.
	return s.db.Sync()
}

// Client talks to a Server through a resilient transport: per-op
// deadlines, retried reconnects with backoff, and a circuit breaker whose
// half-open probe is the protocol's own PING (which doubles as the
// connection-state resync — a fresh wire is verified in-sync before any
// op uses it, so a half-read response from a previous failure can never
// desynchronise later calls). Protocol rejections ("ERR ...") are fully
// read off the wire and never retried. Writes are at-least-once under
// retry: a WRITE whose response was lost may be re-sent.
type Client struct {
	tr *resilience.Transport
}

// wireTag renders the optional "traceparent=<tp> " frame token for the
// span context in ctx ("" when untraced). Built inside the transport's
// per-attempt closure, so each retry stamps its own attempt span and the
// server subtree parents under the exact attempt that carried it.
func wireTag(ctx context.Context) string {
	tp := introspect.TraceparentFromContext(ctx)
	if tp == "" {
		return ""
	}
	return introspect.WireField + tp + " "
}

// pingResync is the resync/half-open probe run on every fresh connection.
func pingResync(w *resilience.Wire) error {
	if _, err := fmt.Fprintln(w.Conn, "PING"); err != nil {
		return err
	}
	resp, err := w.R.ReadString('\n')
	if err != nil {
		return err
	}
	if strings.TrimSpace(resp) != "PONG" {
		return fmt.Errorf("tsdb: unexpected ping response %q", resp)
	}
	return nil
}

// Dial connects to a Server with the default resilience policy. The
// initial connect is a single attempt so a bad address fails fast.
func Dial(addr string) (*Client, error) {
	return DialPolicy(addr, resilience.DefaultPolicy())
}

// DialPolicy connects with an explicit resilience policy.
func DialPolicy(addr string, pol resilience.Policy) (*Client, error) {
	c := &Client{tr: resilience.NewTransport(addr, pol, pingResync)}
	if err := c.tr.Connect(); err != nil {
		c.tr.Close()
		return nil, fmt.Errorf("tsdb: dial %s: %w", addr, err)
	}
	return c, nil
}

// Stats exposes the transport's fault counters.
func (c *Client) Stats() resilience.TransportStats { return c.tr.Stats() }

// Transport exposes the underlying resilient transport, letting callers
// attach self-observability (Transport.SetIntrospection) without tsdb
// importing the introspect package (which imports tsdb).
func (c *Client) Transport() *resilience.Transport { return c.tr }

// Write ships one point with a background context.
func (c *Client) Write(p Point) error {
	return c.WriteContext(context.Background(), p)
}

// WriteContext ships one point; cancelling ctx aborts mid-retry.
func (c *Client) WriteContext(ctx context.Context, p Point) error {
	line, err := EncodeLine(p)
	if err != nil {
		return err
	}
	return c.tr.DoContext(ctx, func(ctx context.Context, w *resilience.Wire) error {
		if _, err := fmt.Fprintf(w.Conn, "WRITE %s%s\n", wireTag(ctx), line); err != nil {
			return err
		}
		resp, err := w.R.ReadString('\n')
		if err != nil {
			return err
		}
		resp = strings.TrimSpace(resp)
		if resp != "OK" {
			return resilience.Permanent(fmt.Errorf("tsdb: write rejected: %s", resp))
		}
		return nil
	})
}

// WritePoint aliases Write so the client satisfies telemetry.PointSink.
func (c *Client) WritePoint(p Point) error { return c.Write(p) }

// WritePointContext aliases WriteContext so the client satisfies
// telemetry.ContextPointSink: a cancelled session stops burning the
// retry budget on the in-flight point.
func (c *Client) WritePointContext(ctx context.Context, p Point) error {
	return c.WriteContext(ctx, p)
}

// WriteBatch ships a batch with a background context.
//
// Deprecated: use WriteBatchContext.
func (c *Client) WriteBatch(ps []Point) error {
	return c.WriteBatchContext(context.Background(), ps)
}

// WriteBatchContext ships a whole batch in ONE round-trip (a WRITEB
// frame: header + n body lines + one ack). The batch is encoded — and
// thereby validated — up front; an unencodable point returns a
// *BatchError before anything touches the wire. An idempotency token
// is minted once per call and carried on every retry attempt, so a
// batch whose ack was lost is acknowledged (not re-applied) by the
// server's dedup window: batch writes are exactly-once under retry,
// where single-point WRITEs are only at-least-once. Server-side
// rejections are permanent (fully read, never retried).
func (c *Client) WriteBatchContext(ctx context.Context, ps []Point) error {
	if len(ps) == 0 {
		return nil
	}
	lines := make([]string, len(ps))
	for i := range ps {
		line, err := EncodeLine(ps[i])
		if err != nil {
			return &BatchError{Index: i, Err: err}
		}
		lines[i] = line
	}
	token := resilience.NextOpToken()
	return c.tr.DoContext(ctx, func(ctx context.Context, w *resilience.Wire) error {
		// One buffered write for the whole frame: header + body reach the
		// kernel together, so a monitoring tick is one syscall + one RTT.
		var b strings.Builder
		fmt.Fprintf(&b, "WRITEB %s%d id=%s\n", wireTag(ctx), len(lines), token)
		for _, line := range lines {
			b.WriteString(line)
			b.WriteByte('\n')
		}
		if _, err := io.WriteString(w.Conn, b.String()); err != nil {
			return err
		}
		resp, err := w.R.ReadString('\n')
		if err != nil {
			return err
		}
		resp = strings.TrimSpace(resp)
		if !strings.HasPrefix(resp, "OK") {
			return resilience.Permanent(fmt.Errorf("tsdb: batch write rejected: %s", resp))
		}
		return nil
	})
}

// Query runs a SELECT statement remotely with a background context.
func (c *Client) Query(stmt string) (*Result, error) {
	return c.QueryContext(context.Background(), stmt)
}

// QueryContext runs a SELECT statement remotely.
func (c *Client) QueryContext(ctx context.Context, stmt string) (*Result, error) {
	var res Result
	err := c.tr.DoContext(ctx, func(ctx context.Context, w *resilience.Wire) error {
		if _, err := fmt.Fprintf(w.Conn, "QUERY %s%s\n", wireTag(ctx), stmt); err != nil {
			return err
		}
		resp, err := w.R.ReadString('\n')
		if err != nil {
			return err
		}
		resp = strings.TrimSpace(resp)
		if strings.HasPrefix(resp, "ERR") {
			return resilience.Permanent(fmt.Errorf("tsdb: query rejected: %s", resp))
		}
		if err := json.Unmarshal([]byte(resp), &res); err != nil {
			// The line was fully read, so the stream is in sync; a
			// malformed body will not get better on retry.
			return resilience.Permanent(fmt.Errorf("tsdb: bad query response: %w", err))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &res, nil
}

// Ping checks liveness with a background context.
func (c *Client) Ping() error {
	return c.PingContext(context.Background())
}

// PingContext checks liveness.
func (c *Client) PingContext(ctx context.Context) error {
	return c.tr.DoContext(ctx, func(ctx context.Context, w *resilience.Wire) error {
		if _, err := fmt.Fprintln(w.Conn, "PING"); err != nil {
			return err
		}
		resp, err := w.R.ReadString('\n')
		if err != nil {
			return err
		}
		if strings.TrimSpace(resp) != "PONG" {
			return resilience.Permanent(fmt.Errorf("tsdb: unexpected ping response %q", resp))
		}
		return nil
	})
}

// Close closes the connection.
func (c *Client) Close() error { return c.tr.Close() }
