package tsdb

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// EncodeLine renders a point in the InfluxDB line protocol:
//
//	measurement[,tag=value...] field=value[,field=value...] timestamp
//
// Tag and field keys are sorted for a canonical form. Spaces, commas and
// equals signs in names are escaped with a backslash as in the real
// protocol.
func EncodeLine(p Point) (string, error) {
	if err := p.Validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(escapeLP(p.Measurement))
	tagKeys := make([]string, 0, len(p.Tags))
	for k := range p.Tags {
		tagKeys = append(tagKeys, k)
	}
	sort.Strings(tagKeys)
	for _, k := range tagKeys {
		b.WriteByte(',')
		b.WriteString(escapeLP(k))
		b.WriteByte('=')
		b.WriteString(escapeLP(p.Tags[k]))
	}
	b.WriteByte(' ')
	fieldKeys := make([]string, 0, len(p.Fields))
	for k := range p.Fields {
		fieldKeys = append(fieldKeys, k)
	}
	sort.Strings(fieldKeys)
	for i, k := range fieldKeys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(escapeLP(k))
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(p.Fields[k], 'g', -1, 64))
	}
	fmt.Fprintf(&b, " %d", p.Time)
	return b.String(), nil
}

// DecodeLine parses one line-protocol line.
func DecodeLine(line string) (Point, error) {
	parts := splitUnescaped(line, ' ')
	if len(parts) != 3 {
		return Point{}, fmt.Errorf("tsdb: line protocol needs 3 sections, got %d in %q", len(parts), line)
	}
	p := Point{Tags: map[string]string{}, Fields: map[string]float64{}}
	// Section 1: measurement and tags.
	head := splitUnescaped(parts[0], ',')
	p.Measurement = unescapeLP(head[0])
	for _, kv := range head[1:] {
		pair := splitUnescaped(kv, '=')
		if len(pair) != 2 {
			return Point{}, fmt.Errorf("tsdb: bad tag %q", kv)
		}
		p.Tags[unescapeLP(pair[0])] = unescapeLP(pair[1])
	}
	// Section 2: fields.
	for _, kv := range splitUnescaped(parts[1], ',') {
		pair := splitUnescaped(kv, '=')
		if len(pair) != 2 {
			return Point{}, fmt.Errorf("tsdb: bad field %q", kv)
		}
		v, err := strconv.ParseFloat(pair[1], 64)
		if err != nil {
			return Point{}, fmt.Errorf("tsdb: bad field value %q: %v", pair[1], err)
		}
		p.Fields[unescapeLP(pair[0])] = v
	}
	// Section 3: timestamp.
	ts, err := strconv.ParseInt(parts[2], 10, 64)
	if err != nil {
		return Point{}, fmt.Errorf("tsdb: bad timestamp %q: %v", parts[2], err)
	}
	p.Time = ts
	return p, p.Validate()
}

func escapeLP(s string) string {
	r := strings.NewReplacer(",", `\,`, " ", `\ `, "=", `\=`)
	return r.Replace(s)
}

func unescapeLP(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// splitUnescaped splits on sep, honouring backslash escapes.
func splitUnescaped(s string, sep byte) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			continue
		}
		if s[i] == sep {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	out = append(out, s[start:])
	return out
}
