package tsdb

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Typed line-protocol errors. Fuzzing shook out a family of inputs the
// original codec silently accepted (NaN/Inf field values, duplicate or
// empty keys) or mangled (unescaped backslashes); each class now has a
// sentinel so callers can errors.Is on the rejection reason.
var (
	// ErrNonFiniteField rejects NaN/±Inf field values: they survive a
	// FormatFloat/ParseFloat round trip but poison every aggregation that
	// touches them, so the codec refuses them at both ends.
	ErrNonFiniteField = errors.New("tsdb: non-finite field value")
	// ErrDuplicateKey rejects a tag or field key appearing twice in one
	// line; the old decoder let the last occurrence win silently.
	ErrDuplicateKey = errors.New("tsdb: duplicate key")
	// ErrEmptyKey rejects empty tag/field keys (and empty tag values),
	// which encode to ambiguous ",=v" fragments.
	ErrEmptyKey = errors.New("tsdb: empty key")
)

// EncodeLine renders a point in the InfluxDB line protocol:
//
//	measurement[,tag=value...] field=value[,field=value...] timestamp
//
// Tag and field keys are sorted for a canonical form: for any point p
// accepted by Validate, DecodeLine(EncodeLine(p)) returns p and
// re-encoding yields byte-identical output. Backslashes, spaces, commas
// and equals signs in names are escaped with a backslash as in the real
// protocol.
func EncodeLine(p Point) (string, error) {
	if err := p.Validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(escapeLP(p.Measurement))
	tagKeys := make([]string, 0, len(p.Tags))
	for k := range p.Tags {
		tagKeys = append(tagKeys, k)
	}
	sort.Strings(tagKeys)
	for _, k := range tagKeys {
		b.WriteByte(',')
		b.WriteString(escapeLP(k))
		b.WriteByte('=')
		b.WriteString(escapeLP(p.Tags[k]))
	}
	b.WriteByte(' ')
	fieldKeys := make([]string, 0, len(p.Fields))
	for k := range p.Fields {
		fieldKeys = append(fieldKeys, k)
	}
	sort.Strings(fieldKeys)
	for i, k := range fieldKeys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(escapeLP(k))
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(p.Fields[k], 'g', -1, 64))
	}
	fmt.Fprintf(&b, " %d", p.Time)
	return b.String(), nil
}

// DecodeLine parses one line-protocol line.
func DecodeLine(line string) (Point, error) {
	parts := splitUnescaped(line, ' ')
	if len(parts) != 3 {
		return Point{}, fmt.Errorf("tsdb: line protocol needs 3 sections, got %d in %q", len(parts), line)
	}
	p := Point{Tags: map[string]string{}, Fields: map[string]float64{}}
	// Section 1: measurement and tags.
	head := splitUnescaped(parts[0], ',')
	p.Measurement = unescapeLP(head[0])
	for _, kv := range head[1:] {
		pair := splitUnescaped(kv, '=')
		if len(pair) != 2 {
			return Point{}, fmt.Errorf("tsdb: bad tag %q", kv)
		}
		k, v := unescapeLP(pair[0]), unescapeLP(pair[1])
		if k == "" || v == "" {
			return Point{}, fmt.Errorf("%w: tag %q", ErrEmptyKey, kv)
		}
		if _, dup := p.Tags[k]; dup {
			return Point{}, fmt.Errorf("%w: tag %q", ErrDuplicateKey, k)
		}
		p.Tags[k] = v
	}
	// Section 2: fields.
	for _, kv := range splitUnescaped(parts[1], ',') {
		pair := splitUnescaped(kv, '=')
		if len(pair) != 2 {
			return Point{}, fmt.Errorf("tsdb: bad field %q", kv)
		}
		v, err := strconv.ParseFloat(pair[1], 64)
		if err != nil {
			return Point{}, fmt.Errorf("tsdb: bad field value %q: %v", pair[1], err)
		}
		k := unescapeLP(pair[0])
		if _, dup := p.Fields[k]; dup {
			return Point{}, fmt.Errorf("%w: field %q", ErrDuplicateKey, k)
		}
		p.Fields[k] = v
	}
	// Section 3: timestamp.
	ts, err := strconv.ParseInt(parts[2], 10, 64)
	if err != nil {
		return Point{}, fmt.Errorf("tsdb: bad timestamp %q: %v", parts[2], err)
	}
	p.Time = ts
	return p, p.Validate()
}

func escapeLP(s string) string {
	// The backslash must be escaped first (NewReplacer never rescans its
	// own output, so the ordering here is belt-and-braces documentation):
	// without it a name ending in '\' swallows the section separator on
	// decode and the line desyncs.
	r := strings.NewReplacer(`\`, `\\`, ",", `\,`, " ", `\ `, "=", `\=`)
	return r.Replace(s)
}

func unescapeLP(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// splitUnescaped splits on sep, honouring backslash escapes.
func splitUnescaped(s string, sep byte) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			continue
		}
		if s[i] == sep {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	out = append(out, s[start:])
	return out
}

// validateFinite rejects NaN and ±Inf field values with the typed error.
func validateFinite(measurement, key string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("%w: %s in %q", ErrNonFiniteField, key, measurement)
	}
	return nil
}
