package tsdb

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"pmove/internal/introspect"
	"pmove/internal/storage"
)

// Columnar-engine behavior tests: out-of-order ingest equivalence,
// sealed-block oracle agreement (the dataset is pushed well past
// blockRows so compressed blocks, footers, and the head all
// participate), storage self-metrics, block-wise retention, and the
// compressed snapshot format (including the legacy fallback).

// rawRows materializes SELECT * for comparison.
func rawRows(t *testing.T, db *DB, meas string) []Row {
	t.Helper()
	res, err := db.ExecuteContext(context.Background(), QueryRequest{
		Query: &Query{Measurement: meas, Fields: []string{"*"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Rows
}

// TestOutOfOrderIngestSingle writes shuffled points one by one and
// asserts the scan equals the same data ingested pre-sorted.
func TestOutOfOrderIngestSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 2 * blockRows // force seals while out-of-order points keep landing
	shuffled := rng.Perm(n)
	ooo, sorted := New(), New()
	for _, i := range shuffled {
		if err := ooo.WritePoint(Point{
			Measurement: "m",
			Tags:        map[string]string{"tag": "t"},
			Fields:      map[string]float64{"f": float64(i) / 4},
			Time:        int64(i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if err := sorted.WritePoint(Point{
			Measurement: "m",
			Tags:        map[string]string{"tag": "t"},
			Fields:      map[string]float64{"f": float64(i) / 4},
			Time:        int64(i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	got, want := rawRows(t, ooo, "m"), rawRows(t, sorted, "m")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("out-of-order single-point ingest diverges from sorted ingest (%d vs %d rows)", len(got), len(want))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Time < got[i-1].Time {
			t.Fatalf("row %d out of order: %d after %d", i, got[i].Time, got[i-1].Time)
		}
	}
}

// TestOutOfOrderIngestBatched is the batch-write variant, with
// duplicate timestamps and multiple fields in the mix.
func TestOutOfOrderIngestBatched(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 3 * blockRows
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		p := Point{
			Measurement: "m",
			Tags:        map[string]string{"tag": "t"},
			Fields:      map[string]float64{"f": float64(i) / 4},
			Time:        int64(rng.Intn(n / 2)), // heavy duplication
		}
		if i%3 == 0 {
			p.Fields["g"] = float64(-i) / 4
		}
		pts = append(pts, p)
	}
	db := New()
	if err := db.WriteBatchContext(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	rows := rawRows(t, db, "m")
	if len(rows) != n {
		t.Fatalf("%d rows, want %d", len(rows), n)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Time < rows[i-1].Time {
			t.Fatalf("row %d out of order: %d after %d", i, rows[i].Time, rows[i-1].Time)
		}
	}
	// Aggregates over the out-of-order data agree with the oracle.
	q := &Query{Measurement: "m", Aggregates: []Aggregate{
		{Fn: "count", Field: "f"}, {Fn: "sum", Field: "f"}, {Fn: "min", Field: "g"},
		{Fn: "max", Field: "f"}, {Fn: "mean", Field: "g"}, {Fn: "p", Field: "f", Pct: 90},
	}, GroupBy: 512}
	got, err := db.ExecuteContext(context.Background(), QueryRequest{Query: q, SkipCache: true})
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, 0, q, got, refExecute(pts, q))
}

// TestSealedBlockOracle drives the engine past several seals (multiple
// series, >4x blockRows points) and checks every aggregate against the
// row oracle — bit-identical for sum/count/min/max per the dyadic
// construction, 1e-9-relative for mean/pNN — across worker widths and
// time bounds that slice blocks mid-way (exercising both the footer
// fast path and the decode path).
func TestSealedBlockOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(0xc01a))
	n := 4*blockRows + 1234
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		pts = append(pts, Point{
			Measurement: "m",
			Tags:        map[string]string{"tag": []string{"x", "y"}[rng.Intn(2)]},
			Fields:      map[string]float64{"f": dyadic(rng)},
			Time:        int64(i),
		})
	}
	db := New()
	if err := db.WriteBatchContext(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	queries := []*Query{
		// Whole-range, large windows: sealed blocks fold from footers.
		{Measurement: "m", Aggregates: []Aggregate{
			{Fn: "sum", Field: "f"}, {Fn: "count", Field: "f"},
			{Fn: "min", Field: "f"}, {Fn: "max", Field: "f"},
		}, GroupBy: int64(2 * blockRows)},
		// Percentiles force full decode.
		{Measurement: "m", Aggregates: []Aggregate{
			{Fn: "p", Field: "f", Pct: 99}, {Fn: "mean", Field: "f"},
		}, GroupBy: 1000},
		// Bounds slicing a block mid-way defeat the footer path.
		{Measurement: "m", Aggregates: []Aggregate{
			{Fn: "sum", Field: "f"}, {Fn: "count", Field: "f"},
		}, From: int64(blockRows / 2), To: int64(3*blockRows + 17)},
		// Tag filter: only one series' blocks scan.
		{Measurement: "m", TagFilter: map[string]string{"tag": "x"}, Aggregates: []Aggregate{
			{Fn: "sum", Field: "f"}, {Fn: "max", Field: "f"},
		}, GroupBy: 4096},
	}
	for qi, q := range queries {
		want := refExecute(pts, q)
		for _, workers := range []int{1, 4} {
			got, err := db.ExecuteContext(context.Background(), QueryRequest{Query: q, Workers: workers, SkipCache: true})
			if err != nil {
				t.Fatalf("query %d workers %d: %v", qi, workers, err)
			}
			compareResults(t, qi*100+workers, q, got, want)
		}
	}
}

// TestStorageGauges checks the storage self-metrics surface: bytes,
// blocks, compression ratio, and head samples land in the introspect
// registry and track seals and retention.
func TestStorageGauges(t *testing.T) {
	db := New()
	in := introspect.New()
	db.SetIntrospection(in)
	snap := func() introspect.Snapshot { return in.Metrics().Snapshot() }

	s0 := snap()
	for _, name := range []string{"storage.bytes", "storage.blocks", "storage.compression.ratio", "storage.head.samples"} {
		if _, ok := s0.Get(name); !ok {
			t.Fatalf("gauge %s not registered", name)
		}
	}
	n := blockRows + 100
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		pts = append(pts, Point{
			Measurement: "m", Tags: map[string]string{"tag": "t"},
			Fields: map[string]float64{"f": float64(i % 17)}, Time: int64(i),
		})
	}
	if err := db.WriteBatchContext(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	s1 := snap()
	if got := s1.GaugeValue("storage.blocks"); got != 1 {
		t.Fatalf("storage.blocks = %v, want 1", got)
	}
	if got := s1.GaugeValue("storage.head.samples"); got != 100 {
		t.Fatalf("storage.head.samples = %v, want 100", got)
	}
	if got := s1.GaugeValue("storage.bytes"); got <= 0 {
		t.Fatalf("storage.bytes = %v, want > 0", got)
	}
	if got := s1.GaugeValue("storage.compression.ratio"); got < 4 {
		t.Fatalf("storage.compression.ratio = %v, want >= 4 on telemetry-shaped data", got)
	}
	// Retention drains everything; the gauges must follow.
	db.SetRetention(RetentionPolicy{Name: "short", Duration: 1})
	if dropped := db.EnforceRetention(int64(n) * 10); dropped != n {
		t.Fatalf("dropped %d, want %d", dropped, n)
	}
	s2 := snap()
	if got := s2.GaugeValue("storage.blocks"); got != 0 {
		t.Fatalf("storage.blocks after retention = %v, want 0", got)
	}
	if got := s2.GaugeValue("storage.bytes"); got != 0 {
		t.Fatalf("storage.bytes after retention = %v, want 0", got)
	}
	if got := s2.GaugeValue("storage.head.samples"); got != 0 {
		t.Fatalf("storage.head.samples after retention = %v, want 0", got)
	}
}

// TestRetentionDropsWholeBlocks crosses several seal boundaries, then
// enforces a cutoff landing inside a sealed block: whole expired blocks
// unlink, the straddling block is rewritten, and the scan sees exactly
// the surviving rows.
func TestRetentionDropsWholeBlocks(t *testing.T) {
	db := New()
	n := 3*blockRows + 500
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		pts = append(pts, Point{
			Measurement: "m", Tags: map[string]string{"tag": "t"},
			Fields: map[string]float64{"f": float64(i) / 4}, Time: int64(i),
		})
	}
	if err := db.WriteBatchContext(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	cutoff := int64(blockRows + blockRows/2) // mid-second-block
	now := int64(n)
	db.SetRetention(RetentionPolicy{Name: "r", Duration: now - cutoff})
	if dropped := db.EnforceRetention(now); dropped != int(cutoff) {
		t.Fatalf("dropped %d, want %d", dropped, cutoff)
	}
	total, _ := db.CountValues("m")
	if total != uint64(n)-uint64(cutoff) {
		t.Fatalf("CountValues = %d, want %d", total, uint64(n)-uint64(cutoff))
	}
	rows := rawRows(t, db, "m")
	if len(rows) != n-int(cutoff) {
		t.Fatalf("%d rows, want %d", len(rows), n-int(cutoff))
	}
	if rows[0].Time != cutoff {
		t.Fatalf("first surviving row at %d, want %d", rows[0].Time, cutoff)
	}
	// A second enforcement with the same clock is a no-op.
	if dropped := db.EnforceRetention(now); dropped != 0 {
		t.Fatalf("re-enforcement dropped %d, want 0", dropped)
	}
}

// TestCompressedSnapshotRoundTrip seals several blocks, compacts, and
// recovers: the snapshot carries sealed blocks in compressed form and
// the recovered DB answers identically (rows, stats, value counts).
func TestCompressedSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, storage.FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	n := 2*blockRows + 333
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		p := Point{
			Measurement: "m", Tags: map[string]string{"host": []string{"a", "b"}[i%2]},
			Fields: map[string]float64{"f": float64(i) / 4}, Time: int64(i % (n / 3)), // duplicates + disorder
		}
		if i%5 == 0 {
			p.Fields["g"] = -float64(i)
		}
		pts = append(pts, p)
	}
	if err := db.WriteBatchContext(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	// A few post-snapshot writes exercise snapshot+WAL overlap.
	for i := 0; i < 10; i++ {
		if err := db.WritePoint(Point{
			Measurement: "late", Fields: map[string]float64{"v": float64(i)}, Time: int64(i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	wantRows := rawRows(t, db, "m")
	wantP, wantV := db.Stats()
	wantTotal, wantZeros := db.CountValues("m")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, storage.FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := rawRows(t, re, "m"); !reflect.DeepEqual(got, wantRows) {
		t.Fatalf("recovered rows diverge (%d vs %d)", len(got), len(wantRows))
	}
	if p, v := re.Stats(); p != wantP || v != wantV {
		t.Fatalf("recovered stats %d/%d, want %d/%d", p, v, wantP, wantV)
	}
	if total, zeros := re.CountValues("m"); total != wantTotal || zeros != wantZeros {
		t.Fatalf("recovered counts %d/%d, want %d/%d", total, zeros, wantTotal, wantZeros)
	}
	if got := rawRows(t, re, "late"); len(got) != 10 {
		t.Fatalf("post-snapshot WAL rows = %d, want 10", len(got))
	}
}

// TestLegacySnapshotFallback plants a row-engine (line protocol)
// snapshot in the data directory and verifies Open still replays it.
func TestLegacySnapshotFallback(t *testing.T) {
	dir := t.TempDir()
	st, _, err := storage.Open(dir, storage.FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	var legacy []byte
	for i := 0; i < 5; i++ {
		line, err := EncodeLine(Point{
			Measurement: "old", Tags: map[string]string{"tag": "t"},
			Fields: map[string]float64{"f": float64(i)}, Time: int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		legacy = append(legacy, line...)
		legacy = append(legacy, '\n')
	}
	if err := st.Compact(legacy); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	db, err := Open(dir, storage.FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rows := rawRows(t, db, "old")
	if len(rows) != 5 {
		t.Fatalf("legacy snapshot replayed %d rows, want 5", len(rows))
	}
	for i, r := range rows {
		if r.Time != int64(i) || r.Values["f"] != float64(i) {
			t.Fatalf("legacy row %d = %+v", i, r)
		}
	}
	// And the next Compact upgrades it to the columnar format.
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, storage.FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := rawRows(t, re, "old"); !reflect.DeepEqual(got, rows) {
		t.Fatalf("upgraded snapshot diverges: %v vs %v", got, rows)
	}
}

// TestSealBoundaryScan pins the block/head boundary: exactly blockRows
// points seal with an empty head, one more lands in the head, and both
// states answer raw and aggregate queries consistently.
func TestSealBoundaryScan(t *testing.T) {
	db := New()
	write := func(i int) {
		t.Helper()
		if err := db.WritePoint(Point{
			Measurement: "m", Fields: map[string]float64{"f": float64(i) / 4}, Time: int64(i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < blockRows; i++ {
		write(i)
	}
	if rows := rawRows(t, db, "m"); len(rows) != blockRows {
		t.Fatalf("at seal boundary: %d rows, want %d", len(rows), blockRows)
	}
	res, err := db.QueryString(fmt.Sprintf(`SELECT count("f"), sum("f") FROM "m" WHERE time >= %d AND time <= %d`, 0, blockRows))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Values["count(f)"] != float64(blockRows) {
		t.Fatalf("sealed count row = %+v", res.Rows)
	}
	write(blockRows)
	if rows := rawRows(t, db, "m"); len(rows) != blockRows+1 {
		t.Fatalf("after boundary: %d rows, want %d", len(rows), blockRows+1)
	}
}
