package tsdb

import (
	"fmt"
	"testing"
	"testing/quick"
)

func pt(meas string, t int64, tag string, fields map[string]float64) Point {
	p := Point{Measurement: meas, Fields: fields, Time: t}
	if tag != "" {
		p.Tags = map[string]string{"tag": tag}
	}
	return p
}

func TestWriteAndQuery(t *testing.T) {
	db := New()
	for i := int64(0); i < 10; i++ {
		if err := db.WritePoint(pt("kernel_percpu_cpu_idle", i*1000, "obs1",
			map[string]float64{"_cpu0": float64(i), "_cpu1": float64(i * 2)})); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.QueryString(`SELECT "_cpu0", "_cpu1" FROM "kernel_percpu_cpu_idle" WHERE tag="obs1"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(res.Rows))
	}
	if res.Rows[3].Values["_cpu1"] != 6 {
		t.Errorf("row 3 _cpu1 = %f", res.Rows[3].Values["_cpu1"])
	}
	// Tag mismatch filters everything.
	res, err = db.QueryString(`SELECT "_cpu0" FROM "kernel_percpu_cpu_idle" WHERE tag="other"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("tag filter leaked %d rows", len(res.Rows))
	}
}

func TestWriteValidation(t *testing.T) {
	db := New()
	if err := db.WritePoint(Point{}); err == nil {
		t.Error("empty point accepted")
	}
	if err := db.WritePoint(Point{Measurement: "m"}); err == nil {
		t.Error("fieldless point accepted")
	}
	if err := db.WritePoint(Point{Measurement: "m", Fields: map[string]float64{"": 1}}); err == nil {
		t.Error("empty field name accepted")
	}
}

func TestOutOfOrderInsertKeepsTimeOrder(t *testing.T) {
	db := New()
	for _, ts := range []int64{50, 10, 30, 20, 40} {
		if err := db.WritePoint(pt("m", ts, "", map[string]float64{"v": float64(ts)})); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.QueryString(`SELECT "v" FROM "m"`)
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(-1)
	for _, r := range res.Rows {
		if r.Time < prev {
			t.Fatalf("rows out of order: %d after %d", r.Time, prev)
		}
		prev = r.Time
	}
}

func TestTimeRangeQueries(t *testing.T) {
	db := New()
	for i := int64(0); i < 100; i++ {
		db.WritePoint(pt("m", i, "", map[string]float64{"v": 1}))
	}
	res, err := db.QueryString(`SELECT "v" FROM "m" WHERE time >= 10 AND time <= 19`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Errorf("time range returned %d rows, want 10", len(res.Rows))
	}
}

func TestSelectStar(t *testing.T) {
	db := New()
	db.WritePoint(pt("m", 1, "", map[string]float64{"a": 1, "b": 2}))
	res, err := db.QueryString(`SELECT * FROM "m"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 2 || res.Columns[0] != "a" || res.Columns[1] != "b" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestQueryMissingMeasurement(t *testing.T) {
	db := New()
	res, err := db.QueryString(`SELECT "x" FROM "nothing"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Error("missing measurement should return no rows, not error")
	}
}

func TestParseQueryListing3(t *testing.T) {
	// Exact statements from the paper's Listing 3.
	stmts := []string{
		`SELECT "_cpu0", "_cpu1", "_cpu22", "_cpu23" FROM "kernel_percpu_cpu_idle" WHERE tag="278e26c2-3fd3-45e4-862b-5646dc9e7aa0"`,
		`SELECT "_node0", "_node1" FROM "mem_numa_alloc_hit" WHERE tag="278e26c2-3fd3-45e4-862b-5646dc9e7aa0"`,
		`SELECT "_node0", "_node1" FROM "perfevent_hwcounters_RAPL_ENERGY_PKG" WHERE tag="278e26c2-3fd3-45e4-862b-5646dc9e7aa0"`,
	}
	for _, s := range stmts {
		q, err := ParseQuery(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if q.TagFilter["tag"] != "278e26c2-3fd3-45e4-862b-5646dc9e7aa0" {
			t.Errorf("tag filter lost: %v", q.TagFilter)
		}
		if len(q.Fields) == 0 {
			t.Error("fields lost")
		}
	}
	q, _ := ParseQuery(stmts[0])
	if q.Measurement != "kernel_percpu_cpu_idle" {
		t.Errorf("measurement = %q", q.Measurement)
	}
	if len(q.Fields) != 4 || q.Fields[2] != "_cpu22" {
		t.Errorf("fields = %v", q.Fields)
	}
}

func TestParseQueryErrors(t *testing.T) {
	bad := []string{
		``,
		`INSERT INTO x`,
		`SELECT FROM "m"`,
		`SELECT "a" FROM`,
		`SELECT "a" FROM "m" WHERE tag`,
		`SELECT "a" FROM "m" WHERE time >= notanumber`,
		`SELECT "a" FROM "m" WHERE tag<"x"`,
		`SELECT "unterminated FROM "m"`,
	}
	for _, s := range bad {
		if _, err := ParseQuery(s); err == nil {
			t.Errorf("accepted bad query %q", s)
		}
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	q := &Query{
		Fields:      []string{"_cpu0", "_cpu1"},
		Measurement: "m1",
		TagFilter:   map[string]string{"tag": "abc"},
		From:        5, To: 10,
	}
	q2, err := ParseQuery(q.String())
	if err != nil {
		t.Fatalf("%s: %v", q.String(), err)
	}
	if q2.Measurement != q.Measurement || len(q2.Fields) != 2 ||
		q2.TagFilter["tag"] != "abc" || q2.From != 5 || q2.To != 10 {
		t.Errorf("round trip: %+v", q2)
	}
}

func TestRetention(t *testing.T) {
	db := New()
	db.SetRetention(RetentionPolicy{Name: "short", Duration: 100})
	for i := int64(0); i < 200; i += 10 {
		db.WritePoint(pt("m", i, "", map[string]float64{"v": 1}))
	}
	dropped := db.EnforceRetention(200)
	if dropped != 10 {
		t.Errorf("dropped %d points, want 10 (times 0..90)", dropped)
	}
	res, _ := db.QueryString(`SELECT "v" FROM "m"`)
	for _, r := range res.Rows {
		if r.Time < 100 {
			t.Errorf("point at %d survived retention", r.Time)
		}
	}
	// Infinite retention drops nothing.
	db2 := New()
	db2.WritePoint(pt("m", 1, "", map[string]float64{"v": 1}))
	if db2.EnforceRetention(1<<60) != 0 {
		t.Error("infinite retention dropped points")
	}
}

func TestRetentionRemovesEmptyMeasurements(t *testing.T) {
	db := New()
	db.SetRetention(RetentionPolicy{Duration: 1})
	db.WritePoint(pt("gone", 0, "", map[string]float64{"v": 1}))
	db.EnforceRetention(1000)
	if len(db.Measurements()) != 0 {
		t.Errorf("measurements = %v", db.Measurements())
	}
}

func TestCountValues(t *testing.T) {
	db := New()
	db.WritePoint(pt("m", 0, "", map[string]float64{"a": 0, "b": 1}))
	db.WritePoint(pt("m", 1, "", map[string]float64{"a": 2, "b": 0}))
	total, zeros := db.CountValues("m")
	if total != 4 || zeros != 2 {
		t.Errorf("total=%d zeros=%d, want 4/2", total, zeros)
	}
}

func TestStats(t *testing.T) {
	db := New()
	db.WritePoint(pt("m", 0, "", map[string]float64{"a": 1, "b": 2, "c": 3}))
	points, values := db.Stats()
	if points != 1 || values != 3 {
		t.Errorf("stats = %d/%d", points, values)
	}
}

func TestMeasurementName(t *testing.T) {
	cases := map[string]string{
		"kernel.percpu.cpu.idle":                      "kernel_percpu_cpu_idle",
		"perfevent.hwcounters.FP_ARITH:SCALAR_SINGLE": "perfevent_hwcounters_FP_ARITH_SCALAR_SINGLE",
		"mem.numa.alloc_hit":                          "mem_numa_alloc_hit",
	}
	for in, want := range cases {
		if got := MeasurementName(in); got != want {
			t.Errorf("MeasurementName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLineProtocolRoundTrip(t *testing.T) {
	p := Point{
		Measurement: "perfevent_hwcounters_X",
		Tags:        map[string]string{"tag": "abc-def", "host": "skx"},
		Fields:      map[string]float64{"_cpu0": 12345, "_cpu1": 0.5},
		Time:        987654321,
	}
	line, err := EncodeLine(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeLine(line)
	if err != nil {
		t.Fatalf("%s: %v", line, err)
	}
	if got.Measurement != p.Measurement || got.Time != p.Time {
		t.Errorf("round trip: %+v", got)
	}
	if got.Tags["host"] != "skx" || got.Fields["_cpu0"] != 12345 {
		t.Errorf("round trip lost data: %+v", got)
	}
}

func TestLineProtocolEscaping(t *testing.T) {
	p := Point{
		Measurement: "with space,comma=eq",
		Tags:        map[string]string{"k ey": "v,al=ue"},
		Fields:      map[string]float64{"f ield": 1},
		Time:        1,
	}
	line, err := EncodeLine(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeLine(line)
	if err != nil {
		t.Fatalf("%s: %v", line, err)
	}
	if got.Measurement != p.Measurement || got.Tags["k ey"] != "v,al=ue" || got.Fields["f ield"] != 1 {
		t.Errorf("escaping broken: %q -> %+v", line, got)
	}
}

func TestLineProtocolErrors(t *testing.T) {
	bad := []string{
		"",
		"justmeasurement",
		"m f=notanum 1",
		"m f=1 notatime",
		"m, f=1 1",
	}
	for _, line := range bad {
		if _, err := DecodeLine(line); err == nil {
			t.Errorf("accepted bad line %q", line)
		}
	}
}

func TestLineProtocolProperty(t *testing.T) {
	f := func(v float64, ts int64, n uint8) bool {
		p := Point{
			Measurement: fmt.Sprintf("m%d", n),
			Fields:      map[string]float64{"v": v},
			Time:        ts,
		}
		line, err := EncodeLine(p)
		if err != nil {
			return false
		}
		got, err := DecodeLine(line)
		if err != nil {
			return false
		}
		return got.Fields["v"] == v && got.Time == ts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestServerClientEndToEnd(t *testing.T) {
	db := New()
	srv := NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5; i++ {
		if err := c.Write(pt("remote_m", i, "t1", map[string]float64{"_cpu0": float64(i)})); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Query(`SELECT "_cpu0" FROM "remote_m" WHERE tag="t1"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("remote query rows = %d", len(res.Rows))
	}
	// Bad query propagates an error.
	if _, err := c.Query(`DROP TABLE x`); err == nil {
		t.Error("bad remote query accepted")
	}
}
