package tsdb

import (
	"testing"
)

// queriesEqual compares parsed queries structurally. Float comparison
// uses == (percentiles are finite by construction: aggFn bounds them
// to [0,100], rejecting NaN).
func queriesEqual(a, b *Query) bool {
	if a.Measurement != b.Measurement || a.From != b.From || a.To != b.To ||
		a.GroupBy != b.GroupBy ||
		len(a.Fields) != len(b.Fields) || len(a.Aggregates) != len(b.Aggregates) ||
		len(a.TagFilter) != len(b.TagFilter) {
		return false
	}
	for i := range a.Fields {
		if a.Fields[i] != b.Fields[i] {
			return false
		}
	}
	for i := range a.Aggregates {
		if a.Aggregates[i] != b.Aggregates[i] {
			return false
		}
	}
	for k, v := range a.TagFilter {
		if bv, ok := b.TagFilter[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// FuzzParseQuery asserts the query parser's contract over arbitrary
// statements: never panic, and every accepted statement renders to a
// canonical form (Query.String — the query-cache key) that parses back
// to the same query, byte-stably. The canonical form must be a fixed
// point: parse → String → parse → String yields identical text, or the
// cache would key the same plan under different strings.
func FuzzParseQuery(f *testing.F) {
	f.Add(`SELECT "_cpu0", "_cpu1" FROM "kernel_percpu_cpu_idle" WHERE tag="278e26c2"`)
	f.Add(`SELECT * FROM "m"`)
	f.Add(`SELECT mean("_cpu0") FROM "m" GROUP BY time(5s)`)
	f.Add(`SELECT p99("f"), count("f") FROM "m" WHERE tag="x" AND time >= 5 AND time <= 99 GROUP BY time(250ms)`)
	f.Add(`SELECT p99.9("f") FROM "m"`)
	f.Add(`SELECT sum("f") FROM "m" GROUP BY time(300000000000)`)
	f.Add(`select min("f"), max("f") from "m" where "time"="tagval"`)
	f.Add(`SELECT "f" FROM "m" WHERE k='raw val' AND time = 7`)
	f.Add(`SELECT "a\"b" FROM "m\\n"`)
	f.Add(`SELECT count("f") FROM "m" WHERE "and"="x" AND "group"="y"`)
	f.Add(`SELECT mean("f") FROM "m" WHERE time >= -5 GROUP BY time(1h30m)`)
	f.Add(`SELECT "f" FROM "m" WHERE tag<"x"`)
	f.Add(`SELECT FROM "m"`)
	f.Add(`SELECT mean("f"), "g" FROM "m"`)
	f.Add(`SELECT pNaN("f") FROM "m"`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, stmt string) {
		q, err := ParseQuery(stmt)
		if err != nil {
			return // rejection is a valid outcome; panics are not
		}
		canon := q.String()
		q2, err := ParseQuery(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not parse: %v", canon, stmt, err)
		}
		if !queriesEqual(q, q2) {
			t.Fatalf("round trip changed the query:\n first: %+v\nsecond: %+v\n  stmt: %q\n canon: %q", q, q2, stmt, canon)
		}
		canon2 := q2.String()
		if canon2 != canon {
			t.Fatalf("canonical form unstable: %q then %q (stmt %q)", canon, canon2, stmt)
		}
		// Shape invariants every accepted query upholds.
		if len(q.Fields) > 0 && len(q.Aggregates) > 0 {
			t.Fatalf("accepted mixed raw/aggregate query %q: %+v", stmt, q)
		}
		if len(q.Fields) == 0 && len(q.Aggregates) == 0 {
			t.Fatalf("accepted empty field list %q: %+v", stmt, q)
		}
		if q.GroupBy > 0 && len(q.Aggregates) == 0 {
			t.Fatalf("accepted GROUP BY without aggregates %q: %+v", stmt, q)
		}
		if q.GroupBy < 0 {
			t.Fatalf("accepted negative GROUP BY %q: %+v", stmt, q)
		}
		for _, a := range q.Aggregates {
			switch a.Fn {
			case "mean", "min", "max", "sum", "count":
			case "p":
				if !(a.Pct >= 0 && a.Pct <= 100) {
					t.Fatalf("percentile out of range in %q: %+v", stmt, a)
				}
			default:
				t.Fatalf("unknown aggregate fn in %q: %+v", stmt, a)
			}
		}
	})
}
