package tsdb

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentWritersAndReaders stresses the DB with parallel telemetry
// shippers and dashboard readers — the host's actual workload when
// several targets report at once.
func TestConcurrentWritersAndReaders(t *testing.T) {
	db := New()
	const writers, points = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			meas := fmt.Sprintf("m%d", w%4) // measurements shared across writers
			for i := 0; i < points; i++ {
				err := db.WritePoint(Point{
					Measurement: meas,
					Tags:        map[string]string{"tag": fmt.Sprintf("w%d", w)},
					Fields:      map[string]float64{"v": float64(i)},
					Time:        int64(w*points + i),
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Readers run concurrently with the writers.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := db.QueryString(fmt.Sprintf(`SELECT "v" FROM "m%d"`, r)); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	pts, vals := db.Stats()
	if pts != writers*points || vals != writers*points {
		t.Fatalf("stats: %d/%d, want %d", pts, vals, writers*points)
	}
	// Every measurement's rows are time-ordered despite interleaving.
	for _, m := range db.Measurements() {
		res, err := db.QueryString(fmt.Sprintf(`SELECT "v" FROM "%s"`, m))
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(res.Rows); i++ {
			if res.Rows[i].Time < res.Rows[i-1].Time {
				t.Fatalf("%s: rows out of order after concurrent writes", m)
			}
		}
	}
}

// TestConcurrentRetention runs retention enforcement against live writers.
func TestConcurrentRetention(t *testing.T) {
	db := New()
	db.SetRetention(RetentionPolicy{Name: "r", Duration: 1000})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := int64(0); i < 2000; i++ {
			_ = db.WritePoint(Point{Measurement: "m", Fields: map[string]float64{"v": 1}, Time: i})
		}
	}()
	go func() {
		defer wg.Done()
		for i := int64(0); i < 50; i++ {
			db.EnforceRetention(i * 40)
		}
	}()
	wg.Wait()
	db.EnforceRetention(2000)
	res, err := db.QueryString(`SELECT "v" FROM "m"`)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.Time < 1000 {
			t.Fatalf("expired point at %d survived", r.Time)
		}
	}
}
