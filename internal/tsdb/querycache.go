package tsdb

import (
	"container/list"
	"sync"

	"pmove/internal/introspect"
)

// queryCache memoizes aggregate query results keyed on the canonical
// Query.String() rendering. Correctness is version-based: a reader
// snapshots the queried measurement's version BEFORE scanning, and the
// fill is accepted only if the version is unchanged when the scan
// completes — a write that lands mid-scan bumps the version (before
// the write is acknowledged), so a stale fill is rejected instead of
// cached. A cache hit therefore never returns data older than the last
// acknowledged write to that measurement.
//
// The cache is a bounded LRU; hit/miss/evict/invalidation counts are
// exported as pmove.self.query.cache.* when introspection is attached.
type queryCache struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List               // front = most recently used
	entries map[string]*list.Element // canonical statement → element
	byMeas  map[string]map[string]struct{}
	// versions counts acknowledged invalidations per measurement. A
	// measurement is registered on first read so a later invalidation
	// (including invalidateAll) always outruns an in-flight fill.
	versions map[string]uint64

	hits, misses, evictions, invalidations *introspect.Counter
}

type cacheEntry struct {
	key         string
	measurement string
	res         *Result
}

// defaultQueryCacheCap bounds the cache; dashboards re-issue a small
// working set of canonical queries, so a few hundred entries suffice.
const defaultQueryCacheCap = 256

func newQueryCache(capacity int) *queryCache {
	if capacity <= 0 {
		capacity = defaultQueryCacheCap
	}
	return &queryCache{
		cap:      capacity,
		lru:      list.New(),
		entries:  map[string]*list.Element{},
		byMeas:   map[string]map[string]struct{}{},
		versions: map[string]uint64{},
	}
}

// setIntrospection attaches the self-observability counters. All
// counter methods are nil-safe, so the cache works unwired.
func (c *queryCache) setIntrospection(in *introspect.Introspector) {
	m := in.Metrics()
	c.mu.Lock()
	c.hits = m.Counter("query.cache.hits")
	c.misses = m.Counter("query.cache.misses")
	c.evictions = m.Counter("query.cache.evictions")
	c.invalidations = m.Counter("query.cache.invalidations")
	c.mu.Unlock()
}

// version snapshots (registering if new) the measurement's version.
// Callers take it before scanning and hand it back to put.
func (c *queryCache) version(measurement string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.versions[measurement]
	if !ok {
		// Register so invalidateAll bumps this measurement too, even if
		// no targeted write ever touches it (retention drops).
		c.versions[measurement] = 0
	}
	return v
}

// get returns a deep copy of the cached result for key, if any.
func (c *queryCache) get(key string) (*Result, bool) {
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Inc()
		c.mu.Unlock()
		return nil, false
	}
	c.lru.MoveToFront(el)
	res := el.Value.(*cacheEntry).res
	c.hits.Inc()
	c.mu.Unlock()
	return copyResult(res), true
}

// put caches res under key iff the measurement's version still equals
// the pre-scan snapshot — otherwise a write landed mid-scan and the
// fill is discarded. The cached copy is private; get copies on the way
// out and callers keep their own copy on the way in.
func (c *queryCache) put(key, measurement string, version uint64, res *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.versions[measurement] != version {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.lru.MoveToFront(el)
		return
	}
	el := c.lru.PushFront(&cacheEntry{key: key, measurement: measurement, res: res})
	c.entries[key] = el
	set := c.byMeas[measurement]
	if set == nil {
		set = map[string]struct{}{}
		c.byMeas[measurement] = set
	}
	set[key] = struct{}{}
	for c.lru.Len() > c.cap {
		c.evictLocked(c.lru.Back())
		c.evictions.Inc()
	}
}

// evictLocked removes one element. Callers hold c.mu.
func (c *queryCache) evictLocked(el *list.Element) {
	if el == nil {
		return
	}
	e := el.Value.(*cacheEntry)
	c.lru.Remove(el)
	delete(c.entries, e.key)
	if set := c.byMeas[e.measurement]; set != nil {
		delete(set, e.key)
		if len(set) == 0 {
			delete(c.byMeas, e.measurement)
		}
	}
}

// invalidate drops every cached result for the measurement and bumps
// its version. Writers call it after the write is visible in memory
// and before acknowledging, so acknowledged data is never shadowed by
// a stale hit.
func (c *queryCache) invalidate(measurement string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.versions[measurement]++
	c.invalidations.Inc()
	set := c.byMeas[measurement]
	for key := range set {
		c.evictLocked(c.entries[key])
	}
}

// invalidateAll drops everything and bumps every registered version —
// the retention enforcer's path, where many measurements shrink at
// once.
func (c *queryCache) invalidateAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for m := range c.versions {
		c.versions[m]++
	}
	c.invalidations.Inc()
	for c.lru.Len() > 0 {
		c.evictLocked(c.lru.Back())
	}
}

// stats returns the live entry count (tests and Stats surfaces).
func (c *queryCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// copyResult deep-copies a result so cache-resident rows are never
// aliased by callers.
func copyResult(res *Result) *Result {
	out := &Result{
		Measurement: res.Measurement,
		Columns:     append([]string(nil), res.Columns...),
	}
	if res.Rows != nil {
		out.Rows = make([]Row, len(res.Rows))
		for i, r := range res.Rows {
			vals := make(map[string]float64, len(r.Values))
			for k, v := range r.Values {
				vals[k] = v
			}
			out.Rows[i] = Row{Time: r.Time, Values: vals}
		}
	}
	return out
}
