package tsdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// Sealed-block storage: the immutable, compressed half of the columnar
// engine. A block holds up to blockRows samples of ONE series as
// columns — a delta-of-delta varint timestamp column plus, per field, a
// presence bitmap and a Gorilla XOR-compressed float64 value stream —
// and carries a footer per field (count/zeros/min/max/sum) plus the
// block's time range, so retention can drop whole blocks in O(1) and
// aggregate scans over fully-covered windows never decompress at all.
//
// The blob is self-contained: the same bytes live in memory, in the
// snapshot file, and (conceptually) on any future wire — encode once at
// seal time, reuse everywhere. decodeBlock re-parses a blob into its
// meta (footers + column offsets) with every length and invariant
// checked, so a corrupt snapshot errors instead of tearing the scan;
// FuzzBlockDecode holds the decoder to "never panic, never over-read".

// blockRows is the seal threshold: a series head that reaches this many
// rows is compressed into one immutable block (~InfluxDB TSM / Prometheus
// chunk granularity; also the scan work unit, so parallelism and
// cancellation keep the old stripe responsiveness).
const blockRows = 4096

// blockMagic tags a block blob (format v1).
const blockMagic = 0xB1

// Decoder limits: a corrupt length field must not drive allocations or
// loops past what the blob itself can back.
const (
	maxBlockRows     = 1 << 20
	maxBlockFields   = 1 << 12
	maxFieldNameSize = 1 << 10
)

var errBlockCorrupt = errors.New("tsdb: corrupt block")

// blockField is one field column of a sealed block: its footer
// aggregates and the offsets of its presence bitmap and XOR stream
// inside the blob.
type blockField struct {
	name           string
	count, zeros   uint64
	min, max, sum  float64
	bmOff, bmLen   int
	valOff, valLen int
}

// block is one sealed, immutable, compressed run of a series.
type block struct {
	rows       int
	values     int // present field values across all columns
	minT, maxT int64
	blob       []byte
	tsOff      int
	tsLen      int
	fields     []blockField
}

// fieldIndex finds a field column by name, -1 when the block has none.
func (b *block) fieldIndex(name string) int {
	for i := range b.fields {
		if b.fields[i].name == name {
			return i
		}
	}
	return -1
}

// bitWriter appends an MSB-first bit stream.
type bitWriter struct {
	buf  []byte
	free uint // unused low bits in the last byte
}

// writeBits appends the low nb bits of v, most significant first.
func (w *bitWriter) writeBits(v uint64, nb uint) {
	v <<= 64 - nb // left-align
	for nb > 0 {
		if w.free == 0 {
			w.buf = append(w.buf, 0)
			w.free = 8
		}
		take := w.free
		if take > nb {
			take = nb
		}
		w.buf[len(w.buf)-1] |= byte(v>>(64-take)) << (w.free - take)
		v <<= take
		nb -= take
		w.free -= take
	}
}

// bitReader consumes an MSB-first bit stream with hard bounds checks.
type bitReader struct {
	buf []byte
	pos uint // bit position
}

// readBits reads nb bits (nb <= 64), erroring instead of over-reading.
func (r *bitReader) readBits(nb uint) (uint64, error) {
	if uint(len(r.buf))*8-r.pos < nb {
		return 0, errBlockCorrupt
	}
	var v uint64
	for nb > 0 {
		avail := 8 - r.pos&7
		take := avail
		if take > nb {
			take = nb
		}
		chunk := uint64(r.buf[r.pos>>3]>>(avail-take)) & (1<<take - 1)
		v = v<<take | chunk
		r.pos += take
		nb -= take
	}
	return v, nil
}

// encodeBlock compresses rows of a series (aligned columns, NaN =
// absent) into a sealed block. times must be non-decreasing and
// non-empty; columns with no present values are dropped.
func encodeBlock(times []int64, names []string, cols [][]float64) (*block, error) {
	rows := len(times)
	if rows == 0 {
		return nil, fmt.Errorf("tsdb: encode empty block")
	}
	blob := make([]byte, 0, 16+rows)
	blob = append(blob, blockMagic)
	blob = binary.AppendUvarint(blob, uint64(rows))
	blob = binary.AppendVarint(blob, times[0])
	blob = binary.AppendVarint(blob, times[rows-1])

	// Timestamp column: first value, first delta, then delta-of-deltas —
	// all zigzag varints (telemetry ticks make the dods almost all zero,
	// one byte each).
	ts := make([]byte, 0, rows+8)
	var prevT, prevD int64
	for i, t := range times {
		switch i {
		case 0:
			ts = binary.AppendVarint(ts, t)
		case 1:
			d := t - prevT
			ts = binary.AppendVarint(ts, d)
			prevD = d
		default:
			d := t - prevT
			ts = binary.AppendVarint(ts, d-prevD)
			prevD = d
		}
		prevT = t
	}
	blob = binary.AppendUvarint(blob, uint64(len(ts)))
	blob = append(blob, ts...)

	// Field sections, skipping columns with nothing present in this run.
	type section struct {
		name            string
		count, zeros    uint64
		minV, maxV, sum float64
		bitmap, stream  []byte
	}
	var secs []section
	for ci, name := range names {
		col := cols[ci]
		bitmap := make([]byte, (rows+7)/8)
		var vw bitWriter
		var count, zeros uint64
		var minV, maxV, sum float64
		var prevBits uint64
		var lz, sig uint
		windowValid := false
		for r := 0; r < rows; r++ {
			v := col[r]
			if v != v { // NaN sentinel: field absent in this row
				continue
			}
			bitmap[r>>3] |= 1 << (r & 7)
			bitsV := math.Float64bits(v)
			if count == 0 {
				vw.writeBits(bitsV, 64)
				minV, maxV, sum = v, v, v
			} else {
				xor := prevBits ^ bitsV
				if xor == 0 {
					vw.writeBits(0, 1)
				} else {
					l := uint(bits.LeadingZeros64(xor))
					if l > 31 {
						l = 31
					}
					tz := uint(bits.TrailingZeros64(xor))
					if windowValid && l >= lz && tz >= 64-lz-sig {
						vw.writeBits(2, 2) // '1','0': reuse window
						vw.writeBits(xor>>(64-lz-sig), sig)
					} else {
						s := 64 - l - tz
						vw.writeBits(3, 2) // '1','1': new window
						vw.writeBits(uint64(l), 5)
						vw.writeBits(uint64(s&63), 6) // 64 encodes as 0
						vw.writeBits(xor>>tz, s)
						lz, sig = l, s
						windowValid = true
					}
				}
				if v < minV {
					minV = v
				}
				if v > maxV {
					maxV = v
				}
				sum += v
			}
			if v == 0 {
				zeros++
			}
			count++
			prevBits = bitsV
		}
		if count == 0 {
			continue
		}
		secs = append(secs, section{
			name: name, count: count, zeros: zeros,
			minV: minV, maxV: maxV, sum: sum,
			bitmap: bitmap, stream: vw.buf,
		})
	}
	blob = binary.AppendUvarint(blob, uint64(len(secs)))
	for _, s := range secs {
		blob = binary.AppendUvarint(blob, uint64(len(s.name)))
		blob = append(blob, s.name...)
		blob = binary.AppendUvarint(blob, s.count)
		blob = binary.AppendUvarint(blob, s.zeros)
		blob = binary.LittleEndian.AppendUint64(blob, math.Float64bits(s.minV))
		blob = binary.LittleEndian.AppendUint64(blob, math.Float64bits(s.maxV))
		blob = binary.LittleEndian.AppendUint64(blob, math.Float64bits(s.sum))
		blob = binary.AppendUvarint(blob, uint64(len(s.bitmap)))
		blob = append(blob, s.bitmap...)
		blob = binary.AppendUvarint(blob, uint64(len(s.stream)))
		blob = append(blob, s.stream...)
	}
	// Re-parsing the freshly built blob keeps one authoritative format
	// reader and guarantees anything we sealed will decode.
	return decodeBlock(blob)
}

// decodeBlock parses a block blob into its meta: time range, per-field
// footers, and column offsets. Every length is bounds-checked and every
// structural invariant verified, so arbitrary bytes yield an error, not
// a panic or an over-read; the columns themselves stay compressed.
func decodeBlock(blob []byte) (*block, error) {
	p := 0
	uvar := func() (uint64, error) {
		v, n := binary.Uvarint(blob[p:])
		if n <= 0 {
			return 0, errBlockCorrupt
		}
		p += n
		return v, nil
	}
	ivar := func() (int64, error) {
		v, n := binary.Varint(blob[p:])
		if n <= 0 {
			return 0, errBlockCorrupt
		}
		p += n
		return v, nil
	}
	if len(blob) == 0 || blob[0] != blockMagic {
		return nil, errBlockCorrupt
	}
	p = 1
	rows64, err := uvar()
	if err != nil || rows64 == 0 || rows64 > maxBlockRows {
		return nil, errBlockCorrupt
	}
	rows := int(rows64)
	minT, err := ivar()
	if err != nil {
		return nil, err
	}
	maxT, err := ivar()
	if err != nil || maxT < minT {
		return nil, errBlockCorrupt
	}
	tsLen64, err := uvar()
	if err != nil || tsLen64 > uint64(len(blob)-p) {
		return nil, errBlockCorrupt
	}
	b := &block{rows: rows, minT: minT, maxT: maxT, blob: blob, tsOff: p, tsLen: int(tsLen64)}
	p += int(tsLen64)
	nf64, err := uvar()
	if err != nil || nf64 > maxBlockFields {
		return nil, errBlockCorrupt
	}
	bmLen := (rows + 7) / 8
	for i := uint64(0); i < nf64; i++ {
		var f blockField
		nameLen, err := uvar()
		if err != nil || nameLen == 0 || nameLen > maxFieldNameSize || nameLen > uint64(len(blob)-p) {
			return nil, errBlockCorrupt
		}
		f.name = string(blob[p : p+int(nameLen)])
		p += int(nameLen)
		if f.count, err = uvar(); err != nil || f.count == 0 || f.count > uint64(rows) {
			return nil, errBlockCorrupt
		}
		if f.zeros, err = uvar(); err != nil || f.zeros > f.count {
			return nil, errBlockCorrupt
		}
		if len(blob)-p < 24 {
			return nil, errBlockCorrupt
		}
		f.min = math.Float64frombits(binary.LittleEndian.Uint64(blob[p:]))
		f.max = math.Float64frombits(binary.LittleEndian.Uint64(blob[p+8:]))
		f.sum = math.Float64frombits(binary.LittleEndian.Uint64(blob[p+16:]))
		p += 24
		// Stored values are validated finite, so min/max are finite and
		// ordered. The sum may overflow to ±Inf (finite additions can
		// saturate) but can never be NaN.
		if f.min > f.max || math.IsNaN(f.min) || math.IsInf(f.min, 0) ||
			math.IsNaN(f.max) || math.IsInf(f.max, 0) || math.IsNaN(f.sum) {
			return nil, errBlockCorrupt
		}
		gotBM, err := uvar()
		if err != nil || gotBM != uint64(bmLen) || gotBM > uint64(len(blob)-p) {
			return nil, errBlockCorrupt
		}
		f.bmOff, f.bmLen = p, bmLen
		var present uint64
		for _, by := range blob[p : p+bmLen] {
			present += uint64(bits.OnesCount8(by))
		}
		if present != f.count {
			return nil, errBlockCorrupt
		}
		// Bits past the last row must be clear or the popcount check is
		// meaningless.
		if rows%8 != 0 && blob[p+bmLen-1]>>(rows%8) != 0 {
			return nil, errBlockCorrupt
		}
		p += bmLen
		valLen, err := uvar()
		if err != nil || valLen > uint64(len(blob)-p) {
			return nil, errBlockCorrupt
		}
		f.valOff, f.valLen = p, int(valLen)
		p += int(valLen)
		if b.fieldIndex(f.name) >= 0 {
			return nil, errBlockCorrupt
		}
		b.fields = append(b.fields, f)
		b.values += int(f.count)
	}
	if p != len(blob) {
		return nil, errBlockCorrupt
	}
	return b, nil
}

// decodeTimes decompresses the timestamp column into dst (reused when
// it has capacity), verifying it is sorted and matches the footer range.
func (b *block) decodeTimes(dst []int64) ([]int64, error) {
	if cap(dst) < b.rows {
		dst = make([]int64, b.rows)
	}
	dst = dst[:b.rows]
	data := b.blob[b.tsOff : b.tsOff+b.tsLen]
	p := 0
	var prevT, prevD int64
	for i := 0; i < b.rows; i++ {
		v, n := binary.Varint(data[p:])
		if n <= 0 {
			return nil, errBlockCorrupt
		}
		p += n
		switch i {
		case 0:
			prevT = v
		case 1:
			prevD = v
			prevT += v
		default:
			prevD += v
			prevT += prevD
		}
		if i > 0 && prevT < dst[i-1] {
			return nil, errBlockCorrupt
		}
		dst[i] = prevT
	}
	if p != len(data) || dst[0] != b.minT || dst[b.rows-1] != b.maxT {
		return nil, errBlockCorrupt
	}
	return dst, nil
}

// decodeField decompresses field column fi into dst aligned with the
// block's rows: dst[r] is the value, or NaN where the row has none.
func (b *block) decodeField(fi int, dst []float64) ([]float64, error) {
	f := &b.fields[fi]
	if cap(dst) < b.rows {
		dst = make([]float64, b.rows)
	}
	dst = dst[:b.rows]
	bitmap := b.blob[f.bmOff : f.bmOff+f.bmLen]
	br := bitReader{buf: b.blob[f.valOff : f.valOff+f.valLen]}
	nan := math.NaN()
	var prevBits uint64
	var lz, sig uint = 0, 64
	first := true
	for r := 0; r < b.rows; r++ {
		if bitmap[r>>3]>>(r&7)&1 == 0 {
			dst[r] = nan
			continue
		}
		if first {
			v, err := br.readBits(64)
			if err != nil {
				return nil, err
			}
			prevBits = v
			first = false
		} else {
			c, err := br.readBits(1)
			if err != nil {
				return nil, err
			}
			if c == 1 {
				c2, err := br.readBits(1)
				if err != nil {
					return nil, err
				}
				if c2 == 1 {
					l, err := br.readBits(5)
					if err != nil {
						return nil, err
					}
					s, err := br.readBits(6)
					if err != nil {
						return nil, err
					}
					lz, sig = uint(l), uint(s)
					if sig == 0 {
						sig = 64
					}
					if lz+sig > 64 {
						return nil, errBlockCorrupt
					}
				}
				m, err := br.readBits(sig)
				if err != nil {
					return nil, err
				}
				prevBits ^= m << (64 - lz - sig)
			}
		}
		v := math.Float64frombits(prevBits)
		if v != v { // NaN never enters a valid block; refuse the sentinel
			return nil, errBlockCorrupt
		}
		dst[r] = v
	}
	// Only sub-byte zero padding may remain unread.
	if rem := uint(len(br.buf))*8 - br.pos; rem >= 8 {
		return nil, errBlockCorrupt
	} else if rem > 0 {
		if pad, err := br.readBits(rem); err != nil || pad != 0 {
			return nil, errBlockCorrupt
		}
	}
	return dst, nil
}
