package tsdb

import (
	"encoding/binary"
	"sort"
)

// String interning for the columnar store. Every point used to carry
// its own Tags map; in the columnar layout a series owns one canonical
// tag set and points contribute only (time, field values). The interner
// deduplicates measurement names, tag keys, and tag values per shard so
// a million points over a handful of series pin a handful of strings.
//
// An interner is guarded by its shard's mutex — no locking here.
type interner map[string]string

// intern returns the canonical instance of s, storing it on first use.
func (in interner) intern(s string) string {
	if c, ok := in[s]; ok {
		return c
	}
	in[s] = s
	return s
}

// appendSeriesKey appends the canonical series identity — measurement
// plus the sorted tag set, each part uvarint-length-prefixed so the key
// is injective (no separator collisions) — to dst and returns it.
// keys is caller scratch for sorting tag keys without allocating.
func appendSeriesKey(dst []byte, meas string, tags map[string]string, keys []string) ([]byte, []string) {
	dst = binary.AppendUvarint(dst, uint64(len(meas)))
	dst = append(dst, meas...)
	keys = keys[:0]
	for k := range tags {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		dst = binary.AppendUvarint(dst, uint64(len(k)))
		dst = append(dst, k...)
		v := tags[k]
		dst = binary.AppendUvarint(dst, uint64(len(v)))
		dst = append(dst, v...)
	}
	return dst, keys
}
