package tsdb

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// BatchWriter is the unified batched write surface: the embedded *DB,
// the wire *Client, and superdb.Remote all provide it, so code built
// against it (the auto-batcher, the telemetry pipeline) runs unchanged
// embedded or remote.
type BatchWriter interface {
	WriteBatchContext(ctx context.Context, ps []Point) error
}

// BatcherConfig tunes an auto-batcher.
type BatcherConfig struct {
	// MaxPoints flushes when the buffer reaches this size (default 64,
	// capped at MaxBatchPoints).
	MaxPoints int
	// FlushInterval bounds how long a partial batch may sit buffered
	// before it ships anyway (default 1s). Zero keeps the default;
	// negative disables the timer entirely (flush only on size/explicit
	// Flush/Close — what deterministic tests want).
	FlushInterval time.Duration
	// OnError receives a batch that failed its flush, with the error.
	// The points are handed back intact so the caller can re-route them
	// (e.g. into the telemetry spill journal); with a nil OnError a
	// failed batch is dropped after the error is returned to whichever
	// Add/Flush triggered the flush (timer flushes have no caller, so
	// OnError is the only way to see their failures).
	OnError func(ps []Point, err error)
}

// Batcher coalesces single-point writes into batched ones: Add buffers
// and ships a full batch synchronously; a background timer ships
// partial batches so buffered points never age past FlushInterval.
// Cancelling the constructor context stops the timer and makes every
// subsequent flush fail fast with the context's error. Safe for
// concurrent use.
type Batcher struct {
	w   BatchWriter
	cfg BatcherConfig
	ctx context.Context

	mu     sync.Mutex
	buf    []Point
	closed bool

	stop chan struct{}
	done chan struct{}
}

// NewBatcher starts an auto-batcher over w. ctx is the batcher's
// lifetime: it is the parent of every timer-triggered flush and
// cancelling it aborts in-flight retries. Call Close to flush the tail
// and release the timer.
func NewBatcher(ctx context.Context, w BatchWriter, cfg BatcherConfig) *Batcher {
	if cfg.MaxPoints <= 0 {
		cfg.MaxPoints = 64
	}
	if cfg.MaxPoints > MaxBatchPoints {
		cfg.MaxPoints = MaxBatchPoints
	}
	if cfg.FlushInterval == 0 {
		cfg.FlushInterval = time.Second
	}
	if ctx == nil {
		ctx = context.Background()
	}
	b := &Batcher{
		w:    w,
		cfg:  cfg,
		ctx:  ctx,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if cfg.FlushInterval > 0 {
		go b.timerLoop()
	} else {
		close(b.done)
	}
	return b
}

func (b *Batcher) timerLoop() {
	defer close(b.done)
	t := time.NewTicker(b.cfg.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			b.Flush(b.ctx) // errors reach OnError; nothing else to tell
		case <-b.ctx.Done():
			return
		case <-b.stop:
			return
		}
	}
}

// Add buffers one point. When the buffer reaches MaxPoints the full
// batch ships synchronously and Add returns its outcome — so callers
// get backpressure and errors on the write path, not silently later.
func (b *Batcher) Add(p Point) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return fmt.Errorf("tsdb: add to closed batcher")
	}
	b.buf = append(b.buf, p)
	var full []Point
	if len(b.buf) >= b.cfg.MaxPoints {
		full = b.buf
		b.buf = nil
	}
	b.mu.Unlock()
	if full == nil {
		return nil
	}
	return b.ship(b.ctx, full)
}

// Pending reports how many points are buffered awaiting a flush.
func (b *Batcher) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.buf)
}

// Flush ships whatever is buffered (no-op when empty).
func (b *Batcher) Flush(ctx context.Context) error {
	b.mu.Lock()
	batch := b.buf
	b.buf = nil
	b.mu.Unlock()
	if len(batch) == 0 {
		return nil
	}
	return b.ship(ctx, batch)
}

// ship writes one batch, routing failures to OnError with the points
// intact.
func (b *Batcher) ship(ctx context.Context, batch []Point) error {
	err := ctx.Err()
	if err == nil {
		err = b.w.WriteBatchContext(ctx, batch)
	}
	if err != nil && b.cfg.OnError != nil {
		b.cfg.OnError(batch, err)
	}
	return err
}

// Close flushes the buffered tail and stops the timer. The batcher
// refuses further Adds. Safe to call twice.
func (b *Batcher) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	b.mu.Unlock()
	close(b.stop)
	<-b.done
	return b.Flush(b.ctx)
}
