package tsdb

import (
	"math"
	"sort"
)

// Mutable-head columnar series storage. A series is identified by
// (measurement, canonical tag set) and holds its samples as a run of
// sealed compressed blocks plus one mutable head: parallel column
// arrays (one timestamp column, one float64 column per field seen) that
// absorb appends and bounded mid-stream inserts, then seal into a block
// when they reach blockRows.
//
// NaN is the in-head absence sentinel — safe because Validate and the
// line protocol reject non-finite field values, so a NaN cell can only
// mean "this row has no value for this field".

// colHead is the mutable tail of a series: times plus one value column
// per field, all the same length, sorted by time (stable under
// duplicate timestamps — equal-time inserts land after existing rows).
type colHead struct {
	times []int64
	cols  [][]float64 // aligned with memSeries.names
}

// memSeries is one series: identity, sealed history, mutable head.
type memSeries struct {
	seq    int    // creation order within the measurement (scan tie-break)
	key    string // canonical series key (appendSeriesKey form)
	tags   map[string]string
	names  []string       // field names, creation order, aligned with head.cols
	fields map[string]int // field name -> index in names
	blocks []*block
	head   colHead
}

// measurement groups the series of one measurement name.
type measurement struct {
	name    string
	series  []*memSeries // creation order == seq order
	byKey   map[string]*memSeries
	nextSeq int
}

// matchTags reports whether the series' tag set satisfies an equality
// filter (every filter key present with the given value).
func (s *memSeries) matchTags(filter map[string]string) bool {
	for k, v := range filter {
		if s.tags[k] != v {
			return false
		}
	}
	return true
}

// fieldCol returns the head column index for a field, creating the
// column (NaN-backfilled over existing head rows) on first sight.
func (s *memSeries) fieldCol(name string, in interner) int {
	if i, ok := s.fields[name]; ok {
		return i
	}
	name = in.intern(name)
	col := make([]float64, len(s.head.times), max(cap(s.head.times), 64))
	nan := math.NaN()
	for i := range col {
		col[i] = nan
	}
	i := len(s.names)
	s.names = append(s.names, name)
	s.fields[name] = i
	s.head.cols = append(s.head.cols, col)
	return i
}

// insertRow adds one sample to the head, keeping it time-sorted. The
// common append (t >= last time) is O(1); an out-of-order point shifts
// only the head's tail — bounded by blockRows — instead of copying the
// whole series as the old row store did. Equal timestamps insert after
// existing rows, preserving ingest order within the head.
func (s *memSeries) insertRow(t int64, fields map[string]float64, in interner) {
	h := &s.head
	n := len(h.times)
	pos := n
	if n > 0 && t < h.times[n-1] {
		pos = sort.Search(n, func(i int) bool { return h.times[i] > t })
	}
	// Grow every column by one, then shift the tail open at pos.
	h.times = append(h.times, 0)
	copy(h.times[pos+1:], h.times[pos:])
	h.times[pos] = t
	nan := math.NaN()
	for i := range h.cols {
		c := append(h.cols[i], 0)
		copy(c[pos+1:], c[pos:])
		c[pos] = nan
		h.cols[i] = c
	}
	for name, v := range fields {
		ci := s.fieldCol(name, in)
		// fieldCol may have appended a fresh column already sized to the
		// post-insert row count; both paths leave cols[ci] length n+1.
		s.head.cols[ci][pos] = v
	}
}

// seal compresses the head into an immutable block, appends it to the
// series history, and resets the head (keeping capacity for reuse).
func (s *memSeries) seal() (*block, error) {
	b, err := encodeBlock(s.head.times, s.names, s.head.cols)
	if err != nil {
		return nil, err
	}
	s.blocks = append(s.blocks, b)
	s.head.times = s.head.times[:0]
	for i := range s.head.cols {
		s.head.cols[i] = s.head.cols[i][:0]
	}
	return b, nil
}

// headRange returns the head's time span; ok is false when empty.
func (h *colHead) timeRange() (minT, maxT int64, ok bool) {
	if len(h.times) == 0 {
		return 0, 0, false
	}
	return h.times[0], h.times[len(h.times)-1], true
}
