package tsdb

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"pmove/internal/resilience"
)

// testPolicy is a fast-failing policy for tests.
func testPolicy() resilience.Policy {
	return resilience.Policy{
		DialTimeout:  time.Second,
		ReadTimeout:  300 * time.Millisecond,
		WriteTimeout: 300 * time.Millisecond,
		MaxRetries:   3,
		Backoff:      resilience.Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond, Factor: 2, Jitter: 0.2},
		Breaker:      resilience.BreakerConfig{Threshold: 4, Cooldown: 40 * time.Millisecond},
		Seed:         5,
	}
}

func startServer(t *testing.T, db *DB) (*Server, string) {
	t.Helper()
	srv := NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return srv, addr
}

// TestServerLineTooLong exercises the scanner-overflow fix: a line over
// the 8 MiB buffer now gets an explicit "ERR line too long" instead of a
// silent disconnect.
func TestServerLineTooLong(t *testing.T) {
	srv, addr := startServer(t, New())
	defer srv.Close()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Exactly the scanner's 8 MiB cap with no newline: the server consumes
	// every byte, hits bufio.ErrTooLong, and can answer cleanly (no unread
	// bytes to trigger an RST on close).
	w := bufio.NewWriterSize(conn, 1<<20)
	w.WriteString("WRITE m v=")
	w.WriteString(strings.Repeat("9", 8<<20-len("WRITE m v=")))
	if err := w.Flush(); err != nil {
		t.Fatalf("flush oversized line: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	resp, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatalf("server hung up without answering: %v", err)
	}
	if want := "ERR line too long"; strings.TrimSpace(resp) != want {
		t.Fatalf("got %q, want %q", strings.TrimSpace(resp), want)
	}
}

// TestClientNoDesyncAfterTimeout reproduces the protocol-desync bug the
// seed client had: an op that times out mid-response used to leave the
// stale response on the wire for the next call to misparse. The resilient
// client drops the wire on any I/O error and resyncs via PING, so the
// next op parses its own response.
func TestClientNoDesyncAfterTimeout(t *testing.T) {
	db := New()
	srv, addr := startServer(t, db)
	defer srv.Close()
	proxy := resilience.NewProxy(addr, resilience.Faults{}, 1)
	paddr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	pol := testPolicy()
	pol.MaxRetries = 0 // fail the op outright, then verify recovery
	c, err := DialPolicy(paddr, pol)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	p := Point{Measurement: "m", Fields: map[string]float64{"v": 1}, Time: 1}
	if err := c.Write(p); err != nil {
		t.Fatal(err)
	}
	// Stall the link: the write request reaches the void, the response
	// never arrives, the op times out. The reply may still be in flight
	// when the link heals — exactly the desync window.
	proxy.Partition()
	p.Time = 2
	if err := c.Write(p); err == nil {
		t.Fatal("partitioned write should fail")
	}
	proxy.Heal()
	// Every subsequent op must parse its own response. A QUERY after the
	// failed WRITE is the historical misparse (it used to read "OK").
	res, err := c.Query(`SELECT "v" FROM "m"`)
	if err != nil {
		t.Fatalf("query after failed write: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Time != 1 {
		t.Fatalf("query misparsed after failure: %+v", res)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after recovery: %v", err)
	}
}

// TestClientDeadlineUnderPartition proves no client op hangs when the
// server is partitioned — the acceptance criterion for deadlines.
func TestClientDeadlineUnderPartition(t *testing.T) {
	srv, addr := startServer(t, New())
	defer srv.Close()
	proxy := resilience.NewProxy(addr, resilience.Faults{}, 1)
	paddr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	pol := testPolicy()
	pol.MaxRetries = 1
	c, err := DialPolicy(paddr, pol)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	proxy.Partition()
	done := make(chan error, 1)
	go func() {
		done <- c.Write(Point{Measurement: "m", Fields: map[string]float64{"v": 1}, Time: 1})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("partitioned write should fail")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client write hung under partition — deadlines not observed")
	}
}

// TestClientConcurrentRace hammers one shared client from many
// goroutines against a live server (run under -race).
func TestClientConcurrentRace(t *testing.T) {
	db := New()
	srv, addr := startServer(t, db)
	defer srv.Close()
	c, err := DialPolicy(addr, testPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const workers, ops = 8, 40
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				switch i % 3 {
				case 0:
					err := c.Write(Point{
						Measurement: "race",
						Tags:        map[string]string{"w": fmt.Sprintf("%d", wkr)},
						Fields:      map[string]float64{"v": float64(i)},
						Time:        int64(wkr*ops + i),
					})
					if err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := c.Query(`SELECT "v" FROM "race"`); err != nil {
						t.Error(err)
						return
					}
				default:
					if err := c.Ping(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(wkr)
	}
	wg.Wait()
	pts, _ := db.Stats()
	want := uint64(workers * ((ops + 2) / 3))
	if pts != want {
		t.Fatalf("server recorded %d points, want %d", pts, want)
	}
}

// TestClientSurvivesInjectedFaults runs each injectable fault type
// through the real protocol stack.
func TestClientSurvivesInjectedFaults(t *testing.T) {
	cases := []struct {
		name   string
		faults resilience.Faults
	}{
		{"latency", resilience.Faults{Latency: 5 * time.Millisecond, LatencyJitter: 5 * time.Millisecond}},
		{"slow", resilience.Faults{SlowChunk: 3, Latency: time.Millisecond}},
		{"reset", resilience.Faults{ResetAfterBytes: 256}},
		{"flappy", resilience.Faults{FlapFirst: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db := New()
			srv, addr := startServer(t, db)
			defer srv.Close()
			proxy := resilience.NewProxy(addr, tc.faults, 9)
			paddr, err := proxy.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer proxy.Close()
			pol := testPolicy()
			pol.MaxRetries = 5
			pol.Breaker.Threshold = 0
			pol.ReadTimeout = 2 * time.Second
			pol.WriteTimeout = 2 * time.Second
			// Dial is deliberately single-attempt (bad addresses fail
			// fast), so under flappy accepts the initial connect itself
			// may need a few tries.
			var c *Client
			for i := 0; i < 6; i++ {
				if c, err = DialPolicy(paddr, pol); err == nil {
					break
				}
			}
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			wrote := 0
			for i := 0; i < 12; i++ {
				err := c.Write(Point{Measurement: "f", Fields: map[string]float64{"v": float64(i)}, Time: int64(i)})
				if err == nil {
					wrote++
				}
			}
			if wrote < 10 {
				t.Fatalf("only %d/12 writes survived %s faults", wrote, tc.name)
			}
			pts, _ := db.Stats()
			// At-least-once under retry: the DB may hold duplicates of a
			// write whose ack was lost, never fewer than acked.
			if pts < uint64(wrote) {
				t.Fatalf("server holds %d points, client acked %d", pts, wrote)
			}
		})
	}
}
