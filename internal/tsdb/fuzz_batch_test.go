package tsdb

import (
	"bufio"
	"fmt"
	"net"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// batchFuzzSrv shares one live server across FuzzBatchFrame executions;
// each execution dials its own connection so a misbehaving input cannot
// poison the next through connection state.
var batchFuzzSrv struct {
	once sync.Once
	addr string
	err  error
}

func batchFuzzAddr(tb testing.TB) string {
	batchFuzzSrv.once.Do(func() {
		srv := NewServer(New())
		batchFuzzSrv.addr, batchFuzzSrv.err = srv.Listen("127.0.0.1:0")
	})
	if batchFuzzSrv.err != nil {
		tb.Fatalf("fuzz server: %v", batchFuzzSrv.err)
	}
	return batchFuzzSrv.addr
}

// fuzzBatchSeq keeps fuzz-minted idempotency tokens unique across
// executions, so dedup only ever collapses the deliberate resend.
var fuzzBatchSeq atomic.Uint64

var batchAckRE = regexp.MustCompile(`^(OK [0-9]+|ERR .*)$`)

// FuzzBatchFrame drives the WRITEB wire contract with arbitrary body
// lines over real TCP: a valid-by-construction header (n == number of
// body lines actually sent) must yield EXACTLY one well-formed ack per
// frame — whatever the body lines contain, valid line protocol or
// binary junk — an identical resend must yield the identical ack (the
// retry path, with and without an idempotency token), and the stream
// must stay in sync (a PING on the same connection still pongs).
// Desync, double-acks, hangs, and panics all fail here before a
// resilient client ever sees them.
func FuzzBatchFrame(f *testing.F) {
	f.Add([]byte("m v=1 1"), byte(0))
	f.Add([]byte("m v=1 1\nm v=2 2"), byte(1))
	f.Add([]byte("not line protocol\nm v=3 3"), byte(2))
	f.Add([]byte(""), byte(3))
	f.Add([]byte("m,tag=a v=1,w=2 9\nm v=nan 1"), byte(1))
	f.Add([]byte("\x00\xff\xfe"), byte(2))
	f.Add([]byte("PING\nQUERY SELECT v FROM m\nWRITEB 1"), byte(3))
	f.Fuzz(func(t *testing.T, data []byte, mode byte) {
		lines := strings.Split(string(data), "\n")
		if len(lines) > 64 {
			lines = lines[:64]
		}
		for i := range lines {
			// One wire line per body line; CRs would confuse nothing but
			// keep the frame printable for repro output.
			lines[i] = strings.ReplaceAll(lines[i], "\r", " ")
			if len(lines[i]) > 4<<10 {
				lines[i] = lines[i][:4<<10]
			}
		}
		header := fmt.Sprintf("WRITEB %d", len(lines))
		if mode&1 != 0 {
			header += fmt.Sprintf(" id=fz-%x", fuzzBatchSeq.Add(1))
		}
		var frame strings.Builder
		frame.WriteString(header)
		frame.WriteByte('\n')
		for _, l := range lines {
			frame.WriteString(l)
			frame.WriteByte('\n')
		}

		conn, err := net.Dial("tcp", batchFuzzAddr(t))
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(10 * time.Second))
		r := bufio.NewReader(conn)

		readAck := func(what string) string {
			line, err := r.ReadString('\n')
			if err != nil {
				t.Fatalf("%s for frame %q got no ack: %v", what, frame.String(), err)
			}
			ack := strings.TrimSuffix(line, "\n")
			if !batchAckRE.MatchString(ack) {
				t.Fatalf("%s for frame %q got malformed ack %q", what, frame.String(), ack)
			}
			return ack
		}

		if _, err := conn.Write([]byte(frame.String())); err != nil {
			t.Fatalf("write frame: %v", err)
		}
		first := readAck("send")

		// Identical resend — the shape of a client retry after a lost
		// ack. Tokenless frames re-process (same deterministic verdict);
		// tokened OK frames hit the dedup window. Either way the ack
		// must be byte-identical.
		if mode&2 != 0 {
			if _, err := conn.Write([]byte(frame.String())); err != nil {
				t.Fatalf("resend frame: %v", err)
			}
			if second := readAck("resend"); second != first {
				t.Fatalf("resend of %q acked %q, first attempt acked %q", frame.String(), second, first)
			}
		}

		// The stream must still be in sync after any batch verdict.
		if _, err := conn.Write([]byte("PING\n")); err != nil {
			t.Fatalf("write ping: %v", err)
		}
		pong, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("ping after frame %q got no response: %v", frame.String(), err)
		}
		if strings.TrimSpace(pong) != "PONG" {
			t.Fatalf("stream desynced after frame %q: ping answered %q", frame.String(), pong)
		}
	})
}
