package tsdb

import (
	"context"
	"sync"
	"testing"
	"time"

	"pmove/internal/introspect"
	"pmove/internal/introspect/logbuf"
)

// TestSlowOpLogCarriesClientTraceID asserts the observability plane's
// core join end to end over a real socket: the server-side slow-op log
// record and the client-side span for the same op carry the same
// 128-bit TraceID, and the record's traceparent field is the literal
// wire tag the client stamped on the frame.
func TestSlowOpLogCarriesClientTraceID(t *testing.T) {
	srv := NewServer(New())
	srvIn := introspect.New(introspect.WithProcess("tsdb"))
	srv.SetTracing(srvIn)
	logs := logbuf.New(64)
	// Threshold zero: every op is "slow", so the test never depends on
	// real latency.
	srv.SetLogger(logs.With("tsdb.server"), 0)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	clientIn := introspect.New(introspect.WithProcess("client"))
	c.Transport().SetIntrospection(clientIn, "tsdb")

	ctx, span := clientIn.StartSpan(context.Background(), "client.monitor.tick")
	clientSC, ok := introspect.SpanContextFromContext(ctx)
	if !ok || !clientSC.Valid() {
		t.Fatal("client span context missing")
	}
	if clientSC.Trace.Hi == 0 && clientSC.Trace.Lo == 0 {
		t.Fatal("client trace id is zero")
	}
	pts := []Point{
		{Measurement: "m", Tags: map[string]string{"host": "a"},
			Fields: map[string]float64{"v": 1}, Time: 1},
		{Measurement: "m", Tags: map[string]string{"host": "a"},
			Fields: map[string]float64{"v": 2}, Time: 2},
	}
	if err := c.WriteBatchContext(ctx, pts); err != nil {
		t.Fatal(err)
	}
	span.End(nil)

	recs := logs.Filter(logbuf.Query{Trace: clientSC.Trace})
	if len(recs) != 1 {
		t.Fatalf("got %d records for the client trace, want 1: %+v", len(recs), logs.Records())
	}
	rec := recs[0]
	if rec.Msg != "slow op" || rec.Level != logbuf.Warn {
		t.Fatalf("record = %+v, want slow-op warn", rec)
	}
	if rec.Component != "tsdb.server" {
		t.Fatalf("component = %q", rec.Component)
	}
	if rec.Trace != clientSC.Trace {
		t.Fatalf("record trace %s != client trace %s", rec.Trace, clientSC.Trace)
	}
	// The client span recorded on the client side is in the same trace.
	found := false
	for _, s := range clientIn.Tracer().Spans() {
		if s.Name == "client.monitor.tick" {
			found = true
			if s.Trace != clientSC.Trace {
				t.Fatalf("client span trace %s != %s", s.Trace, clientSC.Trace)
			}
		}
	}
	if !found {
		t.Fatal("client-side span not recorded")
	}
	// The traceparent field is the wire tag: it parses, names the same
	// trace, and its parent span is one of the client's spans (the
	// transport attempt that carried the frame).
	var tp string
	for _, f := range rec.Fields {
		if f.Key == "traceparent" {
			tp = f.Value
		}
	}
	if tp == "" {
		t.Fatalf("record lacks traceparent field: %+v", rec.Fields)
	}
	wireSC, ok := introspect.ParseTraceparent(tp)
	if !ok || wireSC.Trace != clientSC.Trace {
		t.Fatalf("traceparent %q does not join the client trace %s", tp, clientSC.Trace)
	}
	if cmd := fieldValue(rec, "cmd"); cmd != "writeb" {
		t.Fatalf("cmd field = %q", cmd)
	}
}

func fieldValue(rec logbuf.Record, key string) string {
	for _, f := range rec.Fields {
		if f.Key == key {
			return f.Value
		}
	}
	return ""
}

// TestSlowOpConcurrentWriters drives many traced client ops against one
// server while a reader drains the ring — the race-detector companion
// to the correlation test, and a check that concurrent ops never
// cross-contaminate trace identities.
func TestSlowOpConcurrentWriters(t *testing.T) {
	srv := NewServer(New())
	srvIn := introspect.New(introspect.WithProcess("tsdb"))
	srv.SetTracing(srvIn)
	logs := logbuf.New(256)
	srv.SetLogger(logs.With("tsdb.server"), 0)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients = 4
	var wg sync.WaitGroup
	traces := make([]introspect.TraceID, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			in := introspect.New(introspect.WithProcess("client"))
			c.Transport().SetIntrospection(in, "tsdb")
			ctx, span := in.StartSpan(context.Background(), "tick")
			sc, _ := introspect.SpanContextFromContext(ctx)
			traces[i] = sc.Trace
			for j := 0; j < 20; j++ {
				p := Point{Measurement: "m", Tags: map[string]string{"host": "h"},
					Fields: map[string]float64{"v": float64(j)}, Time: int64(j + 1)}
				if err := c.WriteContext(ctx, p); err != nil {
					t.Error(err)
					return
				}
			}
			span.End(nil)
		}(i)
	}
	// Concurrent reader: drains snapshots while the writers hammer the
	// ring, so -race exercises writer/reader interleavings.
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = logs.Records()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()
	// Every acknowledged op logged before its ack flushed, so the ring
	// is complete once all clients returned.
	for i, tr := range traces {
		n := len(logs.Filter(logbuf.Query{Trace: tr}))
		if n != 20 {
			t.Fatalf("client %d: %d records for its trace, want 20", i, n)
		}
	}
}
