package tsdb

import (
	"fmt"
	"strconv"
	"strings"
)

// Query is the SELECT subset P-MoVE auto-generates (Listing 3):
//
//	SELECT "_cpu0", "_cpu1" FROM "kernel_percpu_cpu_idle"
//	    WHERE tag="278e26c2-..." [AND time >= <ns> AND time <= <ns>]
//
// Fields may be "*". Tag comparisons are equality only.
type Query struct {
	Fields      []string
	Measurement string
	TagFilter   map[string]string
	From, To    int64 // ns bounds; 0 = unbounded
}

// String renders the query back to its canonical text form.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, f := range q.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		if f == "*" {
			b.WriteString("*")
		} else {
			fmt.Fprintf(&b, "%q", f)
		}
	}
	fmt.Fprintf(&b, " FROM %q", q.Measurement)
	var conds []string
	for k, v := range q.TagFilter {
		conds = append(conds, fmt.Sprintf("%s=%q", k, v))
	}
	if q.From != 0 {
		conds = append(conds, fmt.Sprintf("time >= %d", q.From))
	}
	if q.To != 0 {
		conds = append(conds, fmt.Sprintf("time <= %d", q.To))
	}
	if len(conds) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(conds, " AND "))
	}
	return b.String()
}

// tokenizer for the query text.
type tokenizer struct {
	s   string
	pos int
}

func (t *tokenizer) skipSpace() {
	for t.pos < len(t.s) && (t.s[t.pos] == ' ' || t.s[t.pos] == '\t' || t.s[t.pos] == '\n') {
		t.pos++
	}
}

// next returns the next token: a quoted string (unquoted), a symbol
// (, = < > ), or a bare word.
func (t *tokenizer) next() (string, bool, error) {
	t.skipSpace()
	if t.pos >= len(t.s) {
		return "", false, nil
	}
	c := t.s[t.pos]
	switch c {
	case '"', '\'':
		quote := c
		end := t.pos + 1
		for end < len(t.s) && t.s[end] != quote {
			end++
		}
		if end >= len(t.s) {
			return "", false, fmt.Errorf("tsdb: unterminated quote at %d", t.pos)
		}
		tok := t.s[t.pos+1 : end]
		t.pos = end + 1
		return tok, true, nil
	case ',', '=', '*':
		t.pos++
		return string(c), false, nil
	case '<', '>':
		if t.pos+1 < len(t.s) && t.s[t.pos+1] == '=' {
			t.pos += 2
			return string(c) + "=", false, nil
		}
		t.pos++
		return string(c), false, nil
	}
	end := t.pos
	for end < len(t.s) && !strings.ContainsRune(" \t\n,=<>*\"'", rune(t.s[end])) {
		end++
	}
	tok := t.s[t.pos:end]
	t.pos = end
	return tok, false, nil
}

// ParseQuery parses the SELECT subset.
func ParseQuery(stmt string) (*Query, error) {
	tz := &tokenizer{s: stmt}
	word, _, err := tz.next()
	if err != nil {
		return nil, err
	}
	if !strings.EqualFold(word, "select") {
		return nil, fmt.Errorf("tsdb: expected SELECT, got %q", word)
	}
	q := &Query{TagFilter: map[string]string{}}
	// Field list.
	for {
		tok, quoted, err := tz.next()
		if err != nil {
			return nil, err
		}
		if tok == "" {
			return nil, fmt.Errorf("tsdb: unexpected end of query in field list")
		}
		if !quoted && strings.EqualFold(tok, "from") {
			break
		}
		if tok == "," {
			continue
		}
		q.Fields = append(q.Fields, tok)
	}
	if len(q.Fields) == 0 {
		return nil, fmt.Errorf("tsdb: empty field list")
	}
	// Measurement.
	meas, _, err := tz.next()
	if err != nil {
		return nil, err
	}
	if meas == "" {
		return nil, fmt.Errorf("tsdb: missing measurement after FROM")
	}
	q.Measurement = meas
	// Optional WHERE.
	tok, _, err := tz.next()
	if err != nil {
		return nil, err
	}
	if tok == "" {
		return q, nil
	}
	if !strings.EqualFold(tok, "where") {
		return nil, fmt.Errorf("tsdb: expected WHERE, got %q", tok)
	}
	for {
		key, _, err := tz.next()
		if err != nil {
			return nil, err
		}
		if key == "" {
			break
		}
		if strings.EqualFold(key, "and") {
			continue
		}
		op, _, err := tz.next()
		if err != nil {
			return nil, err
		}
		val, _, err := tz.next()
		if err != nil {
			return nil, err
		}
		if val == "" {
			return nil, fmt.Errorf("tsdb: condition on %q has no value", key)
		}
		if strings.EqualFold(key, "time") {
			ns, perr := strconv.ParseInt(val, 10, 64)
			if perr != nil {
				return nil, fmt.Errorf("tsdb: bad time literal %q: %v", val, perr)
			}
			switch op {
			case ">", ">=":
				q.From = ns
			case "<", "<=":
				q.To = ns
			case "=":
				q.From, q.To = ns, ns
			default:
				return nil, fmt.Errorf("tsdb: unsupported time operator %q", op)
			}
			continue
		}
		if op != "=" {
			return nil, fmt.Errorf("tsdb: tag conditions support only '=', got %q", op)
		}
		q.TagFilter[key] = val
	}
	return q, nil
}
