package tsdb

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Aggregate is one aggregation column of a SELECT: fn applied to a
// field. Fn is one of "mean", "min", "max", "sum", "count" or "p"
// (percentile, with Pct in [0,100] — p50, p99, p99.9 …).
type Aggregate struct {
	Fn    string
	Field string
	// Pct is the percentile when Fn == "p"; ignored otherwise.
	Pct float64
}

// fnLabel renders the function name ("mean", "p99", "p99.9", …).
func (a Aggregate) fnLabel() string {
	if a.Fn == "p" {
		return "p" + strconv.FormatFloat(a.Pct, 'f', -1, 64)
	}
	return a.Fn
}

// Column is the result-column name of the aggregate, e.g. "mean(_cpu0)".
func (a Aggregate) Column() string {
	return a.fnLabel() + "(" + a.Field + ")"
}

// Query is the SELECT subset P-MoVE auto-generates (Listing 3), plus
// the aggregation surface the dashboards fold it into:
//
//	SELECT "_cpu0", "_cpu1" FROM "kernel_percpu_cpu_idle"
//	    WHERE tag="278e26c2-..." [AND time >= <ns> AND time <= <ns>]
//
//	SELECT mean("_cpu0"), p99("_cpu0") FROM "kernel_percpu_cpu_idle"
//	    WHERE tag="278e26c2-..." GROUP BY time(5s)
//
// Fields may be "*". Tag comparisons are equality only. A query holds
// either raw Fields or Aggregates, never both.
type Query struct {
	Fields      []string
	Aggregates  []Aggregate
	Measurement string
	TagFilter   map[string]string
	From, To    int64 // ns bounds; 0 = unbounded
	// GroupBy is the window width in nanoseconds (GROUP BY time(...));
	// 0 folds the whole time range into one row. Valid only with
	// Aggregates.
	GroupBy int64
}

// queryKeywords are the bare words the parser claims; tag keys that
// collide must be quoted in the canonical rendering.
var queryKeywords = map[string]bool{
	"select": true, "from": true, "where": true, "and": true,
	"group": true, "by": true, "time": true,
}

// bareKeySafe reports whether a tag key re-tokenizes as the same single
// bare word — otherwise the canonical form quotes it.
func bareKeySafe(k string) bool {
	if k == "" {
		return false
	}
	if queryKeywords[strings.ToLower(k)] {
		return false
	}
	return !strings.ContainsAny(k, tokenStops)
}

// String renders the query back to its canonical text form: aggregate
// columns before raw fields, WHERE conditions with tag keys sorted,
// time bounds last, then GROUP BY. ParseQuery(q.String()) reproduces q
// exactly, and the rendering is the query-cache key.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	n := 0
	for _, a := range q.Aggregates {
		if n > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s(%q)", a.fnLabel(), a.Field)
		n++
	}
	for _, f := range q.Fields {
		if n > 0 {
			b.WriteString(", ")
		}
		if f == "*" {
			b.WriteString("*")
		} else {
			fmt.Fprintf(&b, "%q", f)
		}
		n++
	}
	fmt.Fprintf(&b, " FROM %q", q.Measurement)
	keys := make([]string, 0, len(q.TagFilter))
	for k := range q.TagFilter {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var conds []string
	for _, k := range keys {
		kk := k
		if !bareKeySafe(k) {
			kk = strconv.Quote(k)
		}
		conds = append(conds, fmt.Sprintf("%s=%q", kk, q.TagFilter[k]))
	}
	if q.From != 0 {
		conds = append(conds, fmt.Sprintf("time >= %d", q.From))
	}
	if q.To != 0 {
		conds = append(conds, fmt.Sprintf("time <= %d", q.To))
	}
	if len(conds) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(conds, " AND "))
	}
	if q.GroupBy > 0 {
		fmt.Fprintf(&b, " GROUP BY time(%s)", time.Duration(q.GroupBy))
	}
	return b.String()
}

// tokenStops are the bytes that terminate a bare word.
const tokenStops = " \t\n,=<>*\"'()"

// tokenizer for the query text.
type tokenizer struct {
	s   string
	pos int
}

func (t *tokenizer) skipSpace() {
	for t.pos < len(t.s) && (t.s[t.pos] == ' ' || t.s[t.pos] == '\t' || t.s[t.pos] == '\n') {
		t.pos++
	}
}

// next returns the next token: a quoted string (decoded), a symbol
// (, = < > ( ) *), or a bare word. Double-quoted strings honour Go
// escape sequences (the canonical renderer emits %q); single-quoted
// strings are taken raw for line-protocol compatibility.
func (t *tokenizer) next() (string, bool, error) {
	t.skipSpace()
	if t.pos >= len(t.s) {
		return "", false, nil
	}
	c := t.s[t.pos]
	switch c {
	case '"':
		end := t.pos + 1
		for end < len(t.s) && t.s[end] != '"' {
			if t.s[end] == '\\' {
				end++
			}
			end++
		}
		if end >= len(t.s) {
			return "", false, fmt.Errorf("tsdb: unterminated quote at %d", t.pos)
		}
		tok, uerr := strconv.Unquote(t.s[t.pos : end+1])
		if uerr != nil {
			return "", false, fmt.Errorf("tsdb: bad quoted string at %d: %v", t.pos, uerr)
		}
		t.pos = end + 1
		return tok, true, nil
	case '\'':
		end := t.pos + 1
		for end < len(t.s) && t.s[end] != '\'' {
			end++
		}
		if end >= len(t.s) {
			return "", false, fmt.Errorf("tsdb: unterminated quote at %d", t.pos)
		}
		tok := t.s[t.pos+1 : end]
		t.pos = end + 1
		return tok, true, nil
	case ',', '=', '*', '(', ')':
		t.pos++
		return string(c), false, nil
	case '<', '>':
		if t.pos+1 < len(t.s) && t.s[t.pos+1] == '=' {
			t.pos += 2
			return string(c) + "=", false, nil
		}
		t.pos++
		return string(c), false, nil
	}
	end := t.pos
	for end < len(t.s) && !strings.ContainsRune(tokenStops, rune(t.s[end])) {
		end++
	}
	tok := t.s[t.pos:end]
	t.pos = end
	return tok, false, nil
}

// peek returns the next token without consuming it.
func (t *tokenizer) peek() (string, bool, error) {
	save := t.pos
	tok, quoted, err := t.next()
	t.pos = save
	return tok, quoted, err
}

// aggFn resolves an aggregate function name: mean/min/max/sum/count,
// or pNN with NN a percentile in [0,100].
func aggFn(tok string) (string, float64, error) {
	l := strings.ToLower(tok)
	switch l {
	case "mean", "min", "max", "sum", "count":
		return l, 0, nil
	}
	if len(l) > 1 && l[0] == 'p' {
		if v, err := strconv.ParseFloat(l[1:], 64); err == nil && v >= 0 && v <= 100 {
			return "p", v, nil
		}
	}
	return "", 0, fmt.Errorf("tsdb: unknown aggregate function %q", tok)
}

// parseAggregate consumes `(field)` after fn was recognised.
func parseAggregate(tz *tokenizer, fn string, pct float64) (Aggregate, error) {
	var a Aggregate
	open, _, err := tz.next()
	if err != nil {
		return a, err
	}
	if open != "(" {
		return a, fmt.Errorf("tsdb: expected '(' after aggregate function, got %q", open)
	}
	field, quoted, err := tz.next()
	if err != nil {
		return a, err
	}
	if field == "" && !quoted {
		return a, fmt.Errorf("tsdb: aggregate has no field argument")
	}
	if field == "*" && !quoted {
		return a, fmt.Errorf("tsdb: aggregates require a named field, not *")
	}
	closeTok, cq, err := tz.next()
	if err != nil {
		return a, err
	}
	if cq || closeTok != ")" {
		return a, fmt.Errorf("tsdb: expected ')' closing aggregate, got %q", closeTok)
	}
	return Aggregate{Fn: fn, Field: field, Pct: pct}, nil
}

// parseGroupBy consumes `BY time(<interval>)` after GROUP was read.
// The interval is a Go duration ("5s", "1m30s") or a raw nanosecond
// integer; it must be positive.
func parseGroupBy(tz *tokenizer) (int64, error) {
	by, bq, err := tz.next()
	if err != nil {
		return 0, err
	}
	if bq || !strings.EqualFold(by, "by") {
		return 0, fmt.Errorf("tsdb: expected BY after GROUP, got %q", by)
	}
	tw, tq, err := tz.next()
	if err != nil {
		return 0, err
	}
	if tq || !strings.EqualFold(tw, "time") {
		return 0, fmt.Errorf("tsdb: GROUP BY supports only time(...), got %q", tw)
	}
	open, _, err := tz.next()
	if err != nil {
		return 0, err
	}
	if open != "(" {
		return 0, fmt.Errorf("tsdb: expected '(' after GROUP BY time, got %q", open)
	}
	ival, iq, err := tz.next()
	if err != nil {
		return 0, err
	}
	if ival == "" && !iq {
		return 0, fmt.Errorf("tsdb: GROUP BY time() has no interval")
	}
	var ns int64
	if v, perr := strconv.ParseInt(ival, 10, 64); perr == nil {
		ns = v
	} else if d, derr := time.ParseDuration(ival); derr == nil {
		ns = int64(d)
	} else {
		return 0, fmt.Errorf("tsdb: bad GROUP BY interval %q", ival)
	}
	if ns <= 0 {
		return 0, fmt.Errorf("tsdb: GROUP BY interval must be positive, got %q", ival)
	}
	closeTok, cq, err := tz.next()
	if err != nil {
		return 0, err
	}
	if cq || closeTok != ")" {
		return 0, fmt.Errorf("tsdb: expected ')' closing GROUP BY time, got %q", closeTok)
	}
	rest, rq, err := tz.next()
	if err != nil {
		return 0, err
	}
	if rest != "" || rq {
		return 0, fmt.Errorf("tsdb: unexpected token %q after GROUP BY", rest)
	}
	return ns, nil
}

// ParseQuery parses the SELECT subset (raw fields or aggregate calls,
// equality tag filters, time bounds, GROUP BY time windowing).
func ParseQuery(stmt string) (*Query, error) {
	tz := &tokenizer{s: stmt}
	word, _, err := tz.next()
	if err != nil {
		return nil, err
	}
	if !strings.EqualFold(word, "select") {
		return nil, fmt.Errorf("tsdb: expected SELECT, got %q", word)
	}
	q := &Query{TagFilter: map[string]string{}}
	// Field list: raw fields, or aggregate calls fn(field).
	for {
		tok, quoted, err := tz.next()
		if err != nil {
			return nil, err
		}
		if tok == "" && !quoted {
			return nil, fmt.Errorf("tsdb: unexpected end of query in field list")
		}
		if !quoted && strings.EqualFold(tok, "from") {
			break
		}
		if !quoted && tok == "," {
			continue
		}
		if !quoted {
			if nxt, nq, perr := tz.peek(); perr == nil && !nq && nxt == "(" {
				fn, pct, ferr := aggFn(tok)
				if ferr != nil {
					return nil, ferr
				}
				a, aerr := parseAggregate(tz, fn, pct)
				if aerr != nil {
					return nil, aerr
				}
				q.Aggregates = append(q.Aggregates, a)
				continue
			}
		}
		q.Fields = append(q.Fields, tok)
	}
	if len(q.Fields) == 0 && len(q.Aggregates) == 0 {
		return nil, fmt.Errorf("tsdb: empty field list")
	}
	if len(q.Fields) > 0 && len(q.Aggregates) > 0 {
		return nil, fmt.Errorf("tsdb: cannot mix raw fields and aggregates in one SELECT")
	}
	// Measurement.
	meas, mq, err := tz.next()
	if err != nil {
		return nil, err
	}
	if meas == "" && !mq {
		return nil, fmt.Errorf("tsdb: missing measurement after FROM")
	}
	q.Measurement = meas
	// Optional WHERE / GROUP BY.
	tok, tq, err := tz.next()
	if err != nil {
		return nil, err
	}
	switch {
	case tok == "" && !tq:
		return q, nil
	case !tq && strings.EqualFold(tok, "group"):
		gb, gerr := parseGroupBy(tz)
		if gerr != nil {
			return nil, gerr
		}
		q.GroupBy = gb
		if len(q.Aggregates) == 0 {
			return nil, fmt.Errorf("tsdb: GROUP BY time requires aggregate fields")
		}
		return q, nil
	case !tq && strings.EqualFold(tok, "where"):
	default:
		return nil, fmt.Errorf("tsdb: expected WHERE, got %q", tok)
	}
	for {
		key, kq, err := tz.next()
		if err != nil {
			return nil, err
		}
		if key == "" && !kq {
			break
		}
		if !kq && strings.EqualFold(key, "and") {
			continue
		}
		if !kq && strings.EqualFold(key, "group") {
			gb, gerr := parseGroupBy(tz)
			if gerr != nil {
				return nil, gerr
			}
			q.GroupBy = gb
			if len(q.Aggregates) == 0 {
				return nil, fmt.Errorf("tsdb: GROUP BY time requires aggregate fields")
			}
			return q, nil
		}
		op, _, err := tz.next()
		if err != nil {
			return nil, err
		}
		val, vq, err := tz.next()
		if err != nil {
			return nil, err
		}
		if val == "" && !vq {
			return nil, fmt.Errorf("tsdb: condition on %q has no value", key)
		}
		if !kq && strings.EqualFold(key, "time") {
			ns, perr := strconv.ParseInt(val, 10, 64)
			if perr != nil {
				return nil, fmt.Errorf("tsdb: bad time literal %q: %v", val, perr)
			}
			switch op {
			case ">", ">=":
				q.From = ns
			case "<", "<=":
				q.To = ns
			case "=":
				q.From, q.To = ns, ns
			default:
				return nil, fmt.Errorf("tsdb: unsupported time operator %q", op)
			}
			continue
		}
		if op != "=" {
			return nil, fmt.Errorf("tsdb: tag conditions support only '=', got %q", op)
		}
		q.TagFilter[key] = val
	}
	return q, nil
}
