package tsdb

import (
	"fmt"
	"os"
	"testing"

	"pmove/internal/storage"
)

func point(m string, t int64, v float64) Point {
	return Point{Measurement: m, Tags: map[string]string{"host": "a"}, Fields: map[string]float64{"value": v}, Time: t}
}

func countAll(t *testing.T, db *DB, m string) uint64 {
	t.Helper()
	total, _ := db.CountValues(m)
	return total
}

// TestDurableWriteCrashRecover: with fsync=always, every acknowledged
// point survives a crash (no loss), and recovery inserts it exactly
// once (no duplicates).
func TestDurableWriteCrashRecover(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, storage.FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	const n = 25
	for i := 0; i < n; i++ {
		if err := db.WritePoint(point("cpu_idle", int64(i)*1000, float64(i))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := db.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	re, err := Open(dir, storage.FsyncAlways)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if got := countAll(t, re, "cpu_idle"); got != n {
		t.Fatalf("recovered %d values, want %d (fsync=always must lose nothing acknowledged)", got, n)
	}
	// Writes resume cleanly on the recovered store.
	if err := re.WritePoint(point("cpu_idle", 99000, 99)); err != nil {
		t.Fatalf("post-recovery write: %v", err)
	}
}

// TestDurableCompactThenRecover: compaction folds the WAL into the
// snapshot without changing the recovered contents, and post-compaction
// writes land in the fresh WAL.
func TestDurableCompactThenRecover(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, storage.FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := db.WritePoint(point("m", int64(i), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	for i := 10; i < 15; i++ {
		if err := db.WritePoint(point("m", int64(i), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, storage.FsyncAlways)
	if err != nil {
		t.Fatalf("reopen after compact: %v", err)
	}
	defer re.Close()
	if got := countAll(t, re, "m"); got != 15 {
		t.Fatalf("recovered %d values after compact, want 15", got)
	}
	res, err := re.QueryString(`SELECT value FROM m`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 15 {
		t.Fatalf("query sees %d rows, want 15", len(res.Rows))
	}
}

// TestDurableTornTailRecovers: garbage appended to the WAL (the residue
// of a crash mid-append) is truncated on open — clean-prefix recovery,
// no panic, no error.
func TestDurableTornTailRecovers(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, storage.FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := db.WritePoint(point("m", int64(i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	walPath := db.WALPath()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// A torn append: a frame header promising more payload than follows.
	torn, err := storage.AppendRecord(nil, 6, []byte("this tail will be cut"))
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)-7]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	re, err := Open(dir, storage.FsyncAlways)
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	defer re.Close()
	if got := countAll(t, re, "m"); got != 5 {
		t.Fatalf("recovered %d values, want the 5-point clean prefix", got)
	}
}

// TestClosedDurableDBRefusesWrites: after Close/Crash the memory image
// stays readable but writes fail instead of silently losing durability.
func TestClosedDurableDBRefusesWrites(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, storage.FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.WritePoint(point("m", 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.WritePoint(point("m", 2, 2)); err == nil {
		t.Fatal("closed durable DB accepted a write")
	}
	if got := countAll(t, db, "m"); got != 1 {
		t.Fatalf("closed DB no longer readable: %d values", got)
	}
}

// TestServerFlushOnClose: an acknowledged wire write survives server
// Close + crash-reopen even under fsync=never — Close drains handlers
// and syncs the WAL before returning (the flush-on-close guarantee).
func TestServerFlushOnClose(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, storage.FsyncNever)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		if err := cli.Write(point("flushed", int64(i), float64(i))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	cli.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("server Close: %v", err)
	}
	// The crash discards anything unsynced; flush-on-close means that is
	// nothing.
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, storage.FsyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := countAll(t, re, "flushed"); got != n {
		t.Fatalf("graceful shutdown lost acknowledged points: recovered %d, want %d", got, n)
	}
}

// TestDurableRecoveryIsByteIdentical: recovering twice from the same
// directory yields identical query results — recovery is a pure
// function of the files.
func TestDurableRecoveryIsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, storage.FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		p := point("m", int64(i%3), float64(i)) // unordered timestamps exercise the insert path
		p.Fields[fmt.Sprintf("f%d", i)] = float64(i) * 2
		if err := db.WritePoint(p); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()
	render := func() string {
		r, err := Open(dir, storage.FsyncAlways)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		res, err := r.QueryString(`SELECT * FROM m`)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v", res)
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("recovery not deterministic:\n%s\nvs\n%s", a, b)
	}
}
