package tsdb

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"pmove/internal/introspect"
)

func countQuery(measurement string) *Query {
	return &Query{
		Measurement: measurement,
		Aggregates:  []Aggregate{{Fn: "count", Field: "f"}},
	}
}

func execCount(t *testing.T, db *DB, measurement string) float64 {
	t.Helper()
	res, err := db.ExecuteContext(context.Background(), QueryRequest{Query: countQuery(measurement)})
	if err != nil {
		t.Fatalf("count query on %q: %v", measurement, err)
	}
	if len(res.Rows) == 0 {
		return 0
	}
	return res.Rows[0].Values[Aggregate{Fn: "count", Field: "f"}.Column()]
}

// TestQueryCacheHitMissCounters walks the observable cache lifecycle
// through the public DB surface: first aggregate execution misses and
// fills, a repeat hits, a write invalidates, and the next execution
// misses again AND reflects the new write.
func TestQueryCacheHitMissCounters(t *testing.T) {
	db := New()
	in := introspect.New(introspect.WithProcess("tsdb"))
	db.SetIntrospection(in)
	ctx := context.Background()

	write := func(ts int64) {
		t.Helper()
		if err := db.WritePoint(Point{Measurement: "m", Time: ts, Fields: map[string]float64{"f": 1}}); err != nil {
			t.Fatal(err)
		}
	}
	write(1)
	write(2)

	if got := execCount(t, db, "m"); got != 2 {
		t.Fatalf("count = %v, want 2", got)
	}
	if got := execCount(t, db, "m"); got != 2 {
		t.Fatalf("cached count = %v, want 2", got)
	}
	snap := in.Metrics().Snapshot()
	if h := snap.CounterValue("query.cache.hits"); h != 1 {
		t.Fatalf("hits = %d, want 1", h)
	}
	if m := snap.CounterValue("query.cache.misses"); m != 1 {
		t.Fatalf("misses = %d, want 1", m)
	}
	if db.qcache.len() != 1 {
		t.Fatalf("cache len = %d, want 1", db.qcache.len())
	}

	// A write invalidates: the next execution must miss and see the
	// new point, not serve the stale cached count of 2.
	write(3)
	if got := execCount(t, db, "m"); got != 3 {
		t.Fatalf("post-write count = %v, want 3 (stale cache hit?)", got)
	}
	snap = in.Metrics().Snapshot()
	if m := snap.CounterValue("query.cache.misses"); m != 2 {
		t.Fatalf("misses = %d, want 2 after invalidation", m)
	}
	if inv := snap.CounterValue("query.cache.invalidations"); inv == 0 {
		t.Fatal("invalidations counter never incremented")
	}

	// SkipCache bypasses both lookup and fill.
	before := in.Metrics().Snapshot()
	if _, err := db.ExecuteContext(ctx, QueryRequest{Query: countQuery("m"), SkipCache: true}); err != nil {
		t.Fatal(err)
	}
	after := in.Metrics().Snapshot()
	if after.CounterValue("query.cache.hits") != before.CounterValue("query.cache.hits") ||
		after.CounterValue("query.cache.misses") != before.CounterValue("query.cache.misses") {
		t.Fatal("SkipCache touched the cache counters")
	}
}

// TestQueryCacheLRUEviction exercises the bounded LRU directly: the
// least recently used entry is evicted at capacity, and a get renews
// recency.
func TestQueryCacheLRUEviction(t *testing.T) {
	c := newQueryCache(2)
	in := introspect.New()
	c.setIntrospection(in)
	res := &Result{Measurement: "m", Columns: []string{"count(f)"}, Rows: []Row{{Time: 0, Values: map[string]float64{"count(f)": 1}}}}

	v := c.version("m")
	c.put("k1", "m", v, copyResult(res))
	c.put("k2", "m", v, copyResult(res))
	if _, ok := c.get("k1"); !ok { // renew k1 → k2 becomes LRU
		t.Fatal("k1 missing before eviction")
	}
	c.put("k3", "m", v, copyResult(res))
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if _, ok := c.get("k2"); ok {
		t.Fatal("k2 survived eviction despite being LRU")
	}
	if _, ok := c.get("k1"); !ok {
		t.Fatal("k1 evicted despite renewed recency")
	}
	if ev := in.Metrics().Snapshot().CounterValue("query.cache.evictions"); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}

	// get returns a private copy: mutating it must not poison the cache.
	got, _ := c.get("k3")
	got.Rows[0].Values["count(f)"] = 999
	again, _ := c.get("k3")
	if again.Rows[0].Values["count(f)"] != 1 {
		t.Fatal("cache-resident result aliased by a caller mutation")
	}
}

// TestQueryCachePutVersionRejected pins the core protocol: a fill
// whose pre-scan version snapshot has been outrun by an invalidation
// is discarded, never cached.
func TestQueryCachePutVersionRejected(t *testing.T) {
	c := newQueryCache(8)
	res := &Result{Measurement: "m"}
	v := c.version("m")
	c.invalidate("m") // write lands mid-scan
	c.put("k", "m", v, res)
	if c.len() != 0 {
		t.Fatal("stale fill was cached despite version bump")
	}
	// The fresh version is accepted.
	v2 := c.version("m")
	c.put("k", "m", v2, res)
	if c.len() != 1 {
		t.Fatal("current-version fill rejected")
	}
}

// TestQueryCacheRetentionInvalidates ensures the retention enforcer's
// bulk drop invalidates cached aggregates — including for measurements
// that were only ever read, never written after registration.
func TestQueryCacheRetentionInvalidates(t *testing.T) {
	db := New()
	db.SetRetention(RetentionPolicy{Name: "short", Duration: 100})
	for i := int64(1); i <= 4; i++ {
		if err := db.WritePoint(Point{Measurement: "m", Time: i, Fields: map[string]float64{"f": 1}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := execCount(t, db, "m"); got != 4 {
		t.Fatalf("count = %v, want 4", got)
	}
	if db.qcache.len() != 1 {
		t.Fatalf("cache len = %d, want 1", db.qcache.len())
	}
	if dropped := db.EnforceRetention(1000); dropped == 0 {
		t.Fatal("retention dropped nothing")
	}
	if db.qcache.len() != 0 {
		t.Fatalf("cache len = %d after retention, want 0", db.qcache.len())
	}
	if got := execCount(t, db, "m"); got != 0 {
		t.Fatalf("post-retention count = %v, want 0 (stale cache hit?)", got)
	}
}

// TestQueryCacheTortureNeverStale is the invalidation torture test:
// concurrent writers append points while concurrent queriers run the
// same cached count aggregate. The invariant under test is the cache's
// contract — a hit never returns data older than the last ACKNOWLEDGED
// write. Each querier snapshots the acked-write counter BEFORE issuing
// the query; since points only accumulate, the returned count must be
// >= that snapshot. A stale hit (filled before an acked write, served
// after) would violate it. Run under -race this also proves the
// version protocol itself is race-clean.
func TestQueryCacheTortureNeverStale(t *testing.T) {
	db := New()
	db.SetIntrospection(introspect.New())
	const (
		measurements = 3
		writers      = 2 // per measurement
		queriers     = 2 // per measurement
		writesEach   = 300
	)
	acked := make([]atomic.Int64, measurements)
	var wg sync.WaitGroup
	errs := make(chan error, measurements*(writers+queriers))

	for mi := 0; mi < measurements; mi++ {
		meas := fmt.Sprintf("t%d", mi)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(mi int, meas string, w int) {
				defer wg.Done()
				for i := 0; i < writesEach; i++ {
					p := Point{
						Measurement: meas,
						Time:        int64(w*writesEach + i + 1),
						Fields:      map[string]float64{"f": 1},
					}
					if err := db.WritePoint(p); err != nil {
						errs <- err
						return
					}
					// The write is acknowledged: every query issued from
					// here on must observe it.
					acked[mi].Add(1)
				}
			}(mi, meas, w)
		}
		for qd := 0; qd < queriers; qd++ {
			wg.Add(1)
			go func(mi int, meas string) {
				defer wg.Done()
				q := countQuery(meas)
				for {
					floor := acked[mi].Load()
					res, err := db.ExecuteContext(context.Background(), QueryRequest{Query: q})
					if err != nil {
						errs <- err
						return
					}
					var count float64
					if len(res.Rows) > 0 {
						count = res.Rows[0].Values[Aggregate{Fn: "count", Field: "f"}.Column()]
					}
					if int64(count) < floor {
						errs <- fmt.Errorf("%s: cache served count %v older than %d acked writes", meas, count, floor)
						return
					}
					if floor == int64(writers*writesEach) {
						return
					}
				}
			}(mi, meas)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
