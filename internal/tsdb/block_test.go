package tsdb

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// Property suite for the sealed-block codec: compress→decompress must
// be a bit-lossless round trip (including -0.0 and denormals), and the
// per-field footers must equal a recount of the decoded column. The
// generator leans adversarial: denormals, ±0, alternating signs,
// constant runs, duplicate/negative/extreme timestamps, and sparse
// presence patterns.

// genBlockCase builds one random (times, names, cols) input. Returned
// columns use NaN for absent cells, mirroring live heads.
func genBlockCase(rng *rand.Rand) (times []int64, names []string, cols [][]float64) {
	rows := 1 + rng.Intn(600)
	if rng.Intn(20) == 0 {
		rows = 1 + rng.Intn(blockRows) // occasionally a full-size block
	}
	times = make([]int64, rows)
	base := int64(rng.Intn(1<<30)) - (1 << 29)
	switch rng.Intn(10) {
	case 0: // extreme magnitudes: deltas overflow-wrap but round-trip
		base = math.MinInt64 + int64(rng.Intn(1000))
	case 1:
		base = math.MaxInt64 - int64(rng.Intn(1000)) - int64(rows)*10
	}
	t := base
	for i := range times {
		times[i] = t
		switch rng.Intn(5) {
		case 0: // duplicate timestamp
		case 1:
			t += int64(rng.Intn(3))
		default:
			t += int64(rng.Intn(100000))
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })

	nf := 1 + rng.Intn(4)
	for f := 0; f < nf; f++ {
		names = append(names, string(rune('a'+f)))
		col := make([]float64, rows)
		pattern := rng.Intn(6)
		present := 1 + rng.Intn(100) // % chance a cell is present
		prev := 0.0
		for i := range col {
			if rng.Intn(100) >= present {
				col[i] = math.NaN()
				continue
			}
			switch pattern {
			case 0: // constant run
				col[i] = 42.5
			case 1: // ±0, sign alternating with the row index
				if i%2 == 0 {
					col[i] = 0.0
				} else {
					col[i] = math.Copysign(0, -1)
				}
			case 2: // denormals
				col[i] = math.SmallestNonzeroFloat64 * float64(1+rng.Intn(1000))
			case 3: // alternating signs, same magnitude
				col[i] = math.Copysign(3.25, float64(1-2*(i%2)))
			case 4: // slow drift (XOR-friendly)
				prev += float64(rng.Intn(5)) * 0.25
				col[i] = prev
			default: // arbitrary finite values, huge and tiny
				col[i] = math.Float64frombits(rng.Uint64())
				for math.IsNaN(col[i]) || math.IsInf(col[i], 0) {
					col[i] = math.Float64frombits(rng.Uint64())
				}
			}
		}
		cols = append(cols, col)
	}
	return times, names, cols
}

func TestBlockRoundTrip1k(t *testing.T) {
	rng := rand.New(rand.NewSource(0xb10cb10c))
	for c := 0; c < 1000; c++ {
		times, names, cols := genBlockCase(rng)
		b, err := encodeBlock(times, names, cols)
		if err != nil {
			t.Fatalf("case %d: encode: %v", c, err)
		}
		if b.minT != times[0] || b.maxT != times[len(times)-1] {
			t.Fatalf("case %d: time range [%d,%d], want [%d,%d]", c, b.minT, b.maxT, times[0], times[len(times)-1])
		}
		// decodeBlock of the blob must agree with the encoder's view.
		b2, err := decodeBlock(b.blob)
		if err != nil {
			t.Fatalf("case %d: re-decode: %v", c, err)
		}
		if b2.rows != len(times) || b2.values != b.values {
			t.Fatalf("case %d: re-decode rows/values %d/%d, want %d/%d", c, b2.rows, b2.values, len(times), b.values)
		}
		gotT, err := b.decodeTimes(nil)
		if err != nil {
			t.Fatalf("case %d: decodeTimes: %v", c, err)
		}
		for i := range times {
			if gotT[i] != times[i] {
				t.Fatalf("case %d: time[%d] = %d, want %d", c, i, gotT[i], times[i])
			}
		}
		for fi, name := range names {
			// Recount the source column.
			var count, zeros uint64
			var minV, maxV, sum float64
			for _, v := range cols[fi] {
				if math.IsNaN(v) {
					continue
				}
				if count == 0 {
					minV, maxV = v, v
				} else {
					if v < minV {
						minV = v
					}
					if v > maxV {
						maxV = v
					}
				}
				count++
				sum += v
				if v == 0 {
					zeros++
				}
			}
			bi := b.fieldIndex(name)
			if count == 0 {
				if bi >= 0 {
					t.Fatalf("case %d field %s: all-absent column not dropped", c, name)
				}
				continue
			}
			if bi < 0 {
				t.Fatalf("case %d field %s: missing from block", c, name)
			}
			f := &b.fields[bi]
			if f.count != count || f.zeros != zeros || f.min != minV || f.max != maxV || f.sum != sum {
				t.Fatalf("case %d field %s: footer {%d %d %v %v %v}, want {%d %d %v %v %v}",
					c, name, f.count, f.zeros, f.min, f.max, f.sum, count, zeros, minV, maxV, sum)
			}
			got, err := b.decodeField(bi, nil)
			if err != nil {
				t.Fatalf("case %d field %s: decodeField: %v", c, name, err)
			}
			for i, want := range cols[fi] {
				if math.IsNaN(want) {
					if !math.IsNaN(got[i]) {
						t.Fatalf("case %d field %s row %d: got %v, want absent", c, name, i, got[i])
					}
					continue
				}
				// Bit-exact round trip, -0.0 included.
				if math.Float64bits(got[i]) != math.Float64bits(want) {
					t.Fatalf("case %d field %s row %d: got %x, want %x", c, name, i,
						math.Float64bits(got[i]), math.Float64bits(want))
				}
			}
		}
	}
}

// TestBlockCompressionRatio pins the reason this engine exists: a
// telemetry-shaped block (ticking clock, slowly varying values)
// compresses well below its raw columnar size.
func TestBlockCompressionRatio(t *testing.T) {
	times := make([]int64, blockRows)
	col := make([]float64, blockRows)
	for i := range times {
		times[i] = int64(i) * 1_000_000_000
		col[i] = float64(i%97) / 4
	}
	b, err := encodeBlock(times, []string{"f"}, [][]float64{col})
	if err != nil {
		t.Fatal(err)
	}
	raw := blockRows * 16 // 8 bytes time + 8 bytes value per row
	if len(b.blob)*4 > raw {
		t.Fatalf("block blob %d bytes, want at least 4x under raw %d", len(b.blob), raw)
	}
}

// FuzzBlockDecode holds the block decoder to its contract on arbitrary
// bytes: never panic, never over-read — either a clean error or a block
// whose every column decodes.
func FuzzBlockDecode(f *testing.F) {
	// Seed with valid blobs (and their prefixes) so the fuzzer starts
	// inside the format, plus raw noise.
	times := []int64{-5, 0, 0, 7, 1 << 40}
	colA := []float64{1.5, math.Copysign(0, -1), math.NaN(), 1.5, -2.25}
	colB := []float64{math.NaN(), math.SmallestNonzeroFloat64, 2, 2, math.NaN()}
	if b, err := encodeBlock(times, []string{"a", "b"}, [][]float64{colA, colB}); err == nil {
		f.Add(b.blob)
		f.Add(b.blob[:len(b.blob)/2])
		f.Add(b.blob[:1])
		mut := append([]byte(nil), b.blob...)
		mut[len(mut)/3] ^= 0x40
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte{blockMagic})
	f.Add([]byte{blockMagic, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := decodeBlock(data)
		if err != nil {
			return
		}
		if _, err := b.decodeTimes(nil); err != nil {
			return
		}
		for fi := range b.fields {
			if _, err := b.decodeField(fi, nil); err != nil {
				return
			}
		}
	})
}
