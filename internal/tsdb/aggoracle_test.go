package tsdb

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// Reference-oracle property suite: 1k seeded cases compare the
// parallel aggregation engine against a naive O(n) reference over
// randomly generated points — every aggregate × window × tag-filter
// combination. Values are dyadic rationals (k/4 with small k), so
// sum/count/min/max must match EXACTLY regardless of how the engine
// stripes and merges the fold; mean and percentiles get a 1e-9
// relative tolerance.

// refExecute is the naive single-pass reference implementation of the
// aggregate semantics (documented in DESIGN.md): a point is relevant
// if it passes the time bounds and tag filter; a window emits a row
// iff at least one planned field observed at least one sample; count
// columns are always present in emitted rows, other aggregates only
// when their field has samples.
func refExecute(points []Point, q *Query) *Result {
	res := &Result{Measurement: q.Measurement, Columns: make([]string, len(q.Aggregates))}
	for i, a := range q.Aggregates {
		res.Columns[i] = a.Column()
	}
	type state struct{ vals map[string][]float64 }
	wins := map[int64]*state{}
	fields := map[string]bool{}
	for _, a := range q.Aggregates {
		fields[a.Field] = true
	}
	for _, p := range points {
		if p.Measurement != q.Measurement {
			continue
		}
		if q.From != 0 && p.Time < q.From {
			continue
		}
		if q.To != 0 && p.Time > q.To {
			continue
		}
		ok := true
		for k, v := range q.TagFilter {
			if p.Tags[k] != v {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		win := int64(0)
		if q.GroupBy > 0 {
			d := p.Time / q.GroupBy
			if p.Time%q.GroupBy != 0 && p.Time < 0 {
				d--
			}
			win = d * q.GroupBy
		}
		st := wins[win]
		if st == nil {
			st = &state{vals: map[string][]float64{}}
			wins[win] = st
		}
		any := false
		for f := range fields {
			if v, ok := p.Fields[f]; ok {
				st.vals[f] = append(st.vals[f], v)
				any = true
			}
		}
		_ = any
	}
	var order []int64
	for w, st := range wins {
		n := 0
		for _, vs := range st.vals {
			n += len(vs)
		}
		if n > 0 {
			order = append(order, w)
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, w := range order {
		st := wins[w]
		t := w
		if q.GroupBy <= 0 {
			t = q.From
		}
		row := Row{Time: t, Values: map[string]float64{}}
		for _, a := range q.Aggregates {
			vs := st.vals[a.Field]
			if a.Fn == "count" {
				row.Values[a.Column()] = float64(len(vs))
				continue
			}
			if len(vs) == 0 {
				continue
			}
			sorted := append([]float64(nil), vs...)
			sort.Float64s(sorted)
			switch a.Fn {
			case "min":
				row.Values[a.Column()] = sorted[0]
			case "max":
				row.Values[a.Column()] = sorted[len(sorted)-1]
			case "sum", "mean":
				// Left-to-right fold in insertion order — a different
				// association than the engine's striped merge, which is
				// the point: dyadic values make both exact.
				s := 0.0
				for _, v := range vs {
					s += v
				}
				if a.Fn == "mean" {
					s /= float64(len(vs))
				}
				row.Values[a.Column()] = s
			case "p":
				row.Values[a.Column()] = refQuantile(sorted, a.Pct/100)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// refQuantile mirrors the linear-interpolation estimator.
func refQuantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	i := int(pos)
	if i >= n-1 {
		return sorted[n-1]
	}
	frac := pos - float64(i)
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// dyadic returns a random value exactly representable as k/4 — sums of
// hundreds of these are exact in float64 under any association.
func dyadic(rng *rand.Rand) float64 {
	return float64(rng.Intn(2001)-1000) / 4.0
}

func genCase(rng *rand.Rand) ([]Point, *Query) {
	meas := fmt.Sprintf("m%d", rng.Intn(3))
	fieldPool := []string{"f1", "f2", "f3"}
	tagVals := []string{"x", "y"}
	hostVals := []string{"a", "b", "c"}
	n := 1 + rng.Intn(600)
	points := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		p := Point{
			Measurement: meas,
			Time:        int64(rng.Intn(20001) - 10000),
			Tags: map[string]string{
				"tag":  tagVals[rng.Intn(len(tagVals))],
				"host": hostVals[rng.Intn(len(hostVals))],
			},
			Fields: map[string]float64{},
		}
		for _, f := range fieldPool {
			if rng.Intn(3) > 0 {
				p.Fields[f] = dyadic(rng)
			}
		}
		if len(p.Fields) == 0 {
			p.Fields["f1"] = dyadic(rng)
		}
		points = append(points, p)
	}
	fns := []string{"mean", "min", "max", "sum", "count", "p"}
	pcts := []float64{0, 25, 50, 90, 99, 100}
	q := &Query{Measurement: meas, TagFilter: map[string]string{}}
	na := 1 + rng.Intn(4)
	for i := 0; i < na; i++ {
		a := Aggregate{Fn: fns[rng.Intn(len(fns))], Field: fieldPool[rng.Intn(len(fieldPool))]}
		if a.Fn == "p" {
			a.Pct = pcts[rng.Intn(len(pcts))]
		}
		q.Aggregates = append(q.Aggregates, a)
	}
	switch rng.Intn(4) {
	case 1:
		q.TagFilter["tag"] = tagVals[rng.Intn(len(tagVals))]
	case 2:
		q.TagFilter["host"] = hostVals[rng.Intn(len(hostVals))]
	case 3:
		q.TagFilter["tag"] = tagVals[rng.Intn(len(tagVals))]
		q.TagFilter["host"] = hostVals[rng.Intn(len(hostVals))]
	}
	if rng.Intn(2) == 0 {
		q.From = int64(rng.Intn(20001) - 10000)
	}
	if rng.Intn(2) == 0 {
		q.To = int64(rng.Intn(20001) - 10000)
	}
	if rng.Intn(3) > 0 {
		q.GroupBy = int64(1 + rng.Intn(5000))
	}
	return points, q
}

// compareResults asserts engine output matches the reference: exact
// for count/min/max/sum, 1e-9 relative for mean/pNN.
func compareResults(t *testing.T, caseID int, q *Query, got, want *Result) {
	t.Helper()
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("case %d %q: %d rows, reference %d", caseID, q.String(), len(got.Rows), len(want.Rows))
	}
	exact := map[string]bool{"count": true, "min": true, "max": true, "sum": true}
	for i := range want.Rows {
		gr, wr := got.Rows[i], want.Rows[i]
		if gr.Time != wr.Time {
			t.Fatalf("case %d %q row %d: time %d, reference %d", caseID, q.String(), i, gr.Time, wr.Time)
		}
		if len(gr.Values) != len(wr.Values) {
			t.Fatalf("case %d %q row %d: columns %v, reference %v", caseID, q.String(), i, gr.Values, wr.Values)
		}
		for _, a := range q.Aggregates {
			col := a.Column()
			wv, wok := wr.Values[col]
			gv, gok := gr.Values[col]
			if wok != gok {
				t.Fatalf("case %d %q row %d col %s: presence %v, reference %v", caseID, q.String(), i, col, gok, wok)
			}
			if !wok {
				continue
			}
			if exact[a.Fn] {
				if gv != wv {
					t.Fatalf("case %d %q row %d col %s: got %v, reference %v (exact)", caseID, q.String(), i, col, gv, wv)
				}
				continue
			}
			tol := 1e-9 * math.Max(1, math.Abs(wv))
			if math.Abs(gv-wv) > tol {
				t.Fatalf("case %d %q row %d col %s: got %v, reference %v (tol %g)", caseID, q.String(), i, col, gv, wv, tol)
			}
		}
	}
}

func TestAggregateOracle1k(t *testing.T) {
	rng := rand.New(rand.NewSource(0x9e3779b9))
	workerChoices := []int{0, 1, 4, 16}
	for c := 0; c < 1000; c++ {
		points, q := genCase(rng)
		db := New()
		if err := db.WriteBatchContext(context.Background(), points); err != nil {
			t.Fatalf("case %d: batch write: %v", c, err)
		}
		want := refExecute(points, q)
		workers := workerChoices[rng.Intn(len(workerChoices))]
		got, err := db.ExecuteContext(context.Background(), QueryRequest{
			Query: q, Workers: workers, SkipCache: rng.Intn(2) == 0,
		})
		if err != nil {
			t.Fatalf("case %d %q: %v", c, q.String(), err)
		}
		compareResults(t, c, q, got, want)
		// The statement round-trips through the parser to the same result.
		got2, err := db.ExecuteContext(context.Background(), QueryRequest{Statement: q.String()})
		if err != nil {
			t.Fatalf("case %d reparse %q: %v", c, q.String(), err)
		}
		compareResults(t, c, q, got2, want)
	}
}

// TestAggregateWorkerEquivalence pins one dataset and asserts the
// sequential scan and every parallel width produce identical results —
// the merge order is deterministic, not schedule-dependent.
func TestAggregateWorkerEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	db := New()
	var pts []Point
	for i := 0; i < 30000; i++ {
		pts = append(pts, Point{
			Measurement: "m",
			Time:        int64(rng.Intn(1 << 20)),
			Tags:        map[string]string{"tag": []string{"x", "y"}[rng.Intn(2)]},
			Fields:      map[string]float64{"f": dyadic(rng)},
		})
	}
	if err := db.WriteBatchContext(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	q := &Query{
		Measurement: "m",
		Aggregates: []Aggregate{
			{Fn: "count", Field: "f"}, {Fn: "sum", Field: "f"},
			{Fn: "min", Field: "f"}, {Fn: "max", Field: "f"},
			{Fn: "mean", Field: "f"}, {Fn: "p", Field: "f", Pct: 99},
		},
		TagFilter: map[string]string{"tag": "x"},
		GroupBy:   1 << 14,
	}
	base, err := db.ExecuteContext(context.Background(), QueryRequest{Query: q, Workers: 1, SkipCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Rows) == 0 {
		t.Fatal("expected rows")
	}
	for _, w := range []int{2, 4, 16} {
		got, err := db.ExecuteContext(context.Background(), QueryRequest{Query: q, Workers: w, SkipCache: true})
		if err != nil {
			t.Fatal(err)
		}
		compareResults(t, w, q, got, base)
	}
}
