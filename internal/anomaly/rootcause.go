package anomaly

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"pmove/internal/kb"
	"pmove/internal/ontology"
)

// fieldRe parses instance-domain field names like "_cpu17", "_node1",
// "_socket0", "_gpu2".
var fieldRe = regexp.MustCompile(`^_(cpu|node|socket|gpu)(\d+)$`)

// ComponentFor resolves a finding's instance field to the KB component
// twin it names: "_cpu17" → the thread twin with ordinal 17, "_node1" →
// the NUMA node, "_socket0" → the socket, "_gpu0" → the GPU.
func ComponentFor(k *kb.KB, field string) (*kb.Node, error) {
	m := fieldRe.FindStringSubmatch(field)
	if m == nil {
		return nil, fmt.Errorf("anomaly: field %q does not name a component instance", field)
	}
	ord, err := strconv.Atoi(m[2])
	if err != nil {
		return nil, err
	}
	var kind ontology.ComponentKind
	switch m[1] {
	case "cpu":
		kind = ontology.KindThread
	case "node":
		kind = ontology.KindNUMA
	case "socket":
		kind = ontology.KindSocket
	case "gpu":
		kind = ontology.KindGPU
	}
	for _, n := range k.NodesOfKind(kind) {
		if n.Ordinal == ord {
			return n, nil
		}
	}
	return nil, fmt.Errorf("anomaly: no %s with ordinal %d in the KB of %s", kind, ord, k.Host)
}

// RootCausePath returns the focus view of the component a finding names —
// the paper's §III-B navigation: "the path navigating from a component
// perspective to a more generalized system perspective is analyzed,
// aiding in tracing and isolating performance issues".
func RootCausePath(k *kb.KB, f Finding) (*kb.View, error) {
	n, err := ComponentFor(k, f.Field)
	if err != nil {
		return nil, err
	}
	return k.FocusView(n.ID)
}

// Report renders findings with their root-cause paths as text.
func Report(k *kb.KB, findings []Finding) string {
	var b strings.Builder
	if len(findings) == 0 {
		b.WriteString("no anomalies detected\n")
		return b.String()
	}
	for _, f := range findings {
		fmt.Fprintf(&b, "[%s] %s %s %s: %s\n", f.Severity, f.Detector, f.Measurement, f.Field, f.Message)
		if v, err := RootCausePath(k, f); err == nil {
			b.WriteString("  path:")
			for _, n := range v.Nodes {
				fmt.Fprintf(&b, " %s(%s)", n.Kind, n.Interface.DisplayName)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
