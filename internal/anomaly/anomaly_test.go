package anomaly

import (
	"testing"

	"pmove/internal/kb"
	"pmove/internal/tsdb"
)

func series(meas, field string, vals ...float64) Series {
	s := Series{Measurement: meas, Field: field}
	for i, v := range vals {
		s.Times = append(s.Times, int64(i)*1e9)
		s.Values = append(s.Values, v)
	}
	return s
}

func TestThresholdDetector(t *testing.T) {
	d := Threshold{Min: 0, Max: 100, Sev: Critical}
	fs := d.Detect(series("m", "_cpu0", 10, 50, 150, -3, 99))
	if len(fs) != 2 {
		t.Fatalf("findings: %d", len(fs))
	}
	if fs[0].Value != 150 || fs[1].Value != -3 {
		t.Errorf("wrong values flagged: %+v", fs)
	}
	if fs[0].Severity != Critical {
		t.Error("severity lost")
	}
}

func TestZScoreDetector(t *testing.T) {
	d := ZScore{K: 3, MinSamples: 8, Sev: Warning}
	// Flat series with one big spike.
	vals := []float64{10, 11, 9, 10, 10, 11, 9, 10, 10, 500, 10, 10}
	fs := d.Detect(series("m", "_cpu1", vals...))
	if len(fs) != 1 || fs[0].Value != 500 {
		t.Fatalf("findings: %+v", fs)
	}
	// No baseline -> no findings.
	if fs := d.Detect(series("m", "f", 1, 2, 3)); fs != nil {
		t.Error("short series should be skipped")
	}
	// Constant series -> std 0 -> no findings.
	if fs := d.Detect(series("m", "f", 5, 5, 5, 5, 5, 5, 5, 5, 5)); fs != nil {
		t.Error("constant series flagged")
	}
}

func TestStallDetector(t *testing.T) {
	d := Stall{Window: 4, Sev: Critical}
	// Counter advances, then freezes.
	fs := d.Detect(series("m", "_cpu0", 1, 2, 3, 4, 4, 4, 4, 4))
	if len(fs) != 1 {
		t.Fatalf("findings: %+v", fs)
	}
	// A counter that never moved is not a stall (it may just be zero).
	if fs := d.Detect(series("m", "f", 0, 0, 0, 0, 0, 0)); fs != nil {
		t.Error("never-moving counter flagged as stall")
	}
	// A moving counter never freezes.
	if fs := d.Detect(series("m", "f", 1, 2, 3, 4, 5, 6, 7)); fs != nil {
		t.Error("healthy counter flagged")
	}
}

func TestImbalanceDetector(t *testing.T) {
	d := Imbalance{RelTolerance: 0.5, MinFraction: 0.6, Sev: Warning}
	healthy := []Series{
		series("m", "_cpu0", 100, 100, 100, 100),
		series("m", "_cpu1", 105, 95, 100, 102),
		series("m", "_cpu2", 98, 103, 99, 100),
	}
	if fs := d.DetectAcross(healthy); fs != nil {
		t.Errorf("balanced instances flagged: %+v", fs)
	}
	skewed := append(healthy, series("m", "_cpu3", 5, 4, 6, 5))
	fs := d.DetectAcross(skewed)
	if len(fs) != 1 || fs[0].Field != "_cpu3" {
		t.Fatalf("findings: %+v", fs)
	}
	// Fewer than two instances: nothing to compare.
	if fs := d.DetectAcross(healthy[:1]); fs != nil {
		t.Error("single series flagged")
	}
}

func TestScanObservationEndToEnd(t *testing.T) {
	db := tsdb.New()
	tag := "obs-anomaly"
	// cpu0 is healthy, cpu1 freezes after a while (sampler stall).
	cum0, cum1 := 0.0, 0.0
	for i := int64(0); i < 20; i++ {
		cum0 += 100
		if i < 8 {
			cum1 += 100
		}
		db.WritePoint(tsdb.Point{
			Measurement: "perfevent_hwcounters_CYC",
			Tags:        map[string]string{"tag": tag},
			Fields:      map[string]float64{"_cpu0": cum0, "_cpu1": cum1},
			Time:        i * 1e9,
		})
	}
	obs := &kb.Observation{
		ID: "obs:1", Tag: tag, Host: "t",
		Metrics: []kb.MetricRef{{Measurement: "perfevent_hwcounters_CYC", Fields: []string{"_cpu0", "_cpu1"}}},
	}
	fs, err := DefaultScanner().ScanObservation(db, obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) == 0 {
		t.Fatal("stalled counter not detected")
	}
	foundStall := false
	for _, f := range fs {
		if f.Detector == "stall" && f.Field == "_cpu1" {
			foundStall = true
		}
		if f.Detector == "stall" && f.Field == "_cpu0" {
			t.Error("healthy counter flagged as stalled")
		}
	}
	if !foundStall {
		t.Errorf("findings: %+v", fs)
	}
	// Findings sorted by severity descending.
	for i := 1; i < len(fs); i++ {
		if fs[i].Severity > fs[i-1].Severity {
			t.Fatal("findings not sorted by severity")
		}
	}
}

func TestSeverityString(t *testing.T) {
	if Info.String() != "info" || Warning.String() != "warning" || Critical.String() != "critical" {
		t.Fatal("severity strings")
	}
}
