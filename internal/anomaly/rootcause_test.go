package anomaly

import (
	"strings"
	"testing"

	"pmove/internal/kb"
	"pmove/internal/ontology"
	"pmove/internal/topo"
)

func testKB(t *testing.T) *kb.KB {
	t.Helper()
	doc, err := topo.NewProber().Probe(topo.WithGPU(topo.MustPreset(topo.PresetICL)))
	if err != nil {
		t.Fatal(err)
	}
	k, err := kb.Generate(doc, kb.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestComponentFor(t *testing.T) {
	k := testKB(t)
	cases := []struct {
		field string
		kind  ontology.ComponentKind
		ord   int
	}{
		{"_cpu5", ontology.KindThread, 5},
		{"_cpu15", ontology.KindThread, 15},
		{"_node0", ontology.KindNUMA, 0},
		{"_socket0", ontology.KindSocket, 0},
		{"_gpu0", ontology.KindGPU, 0},
	}
	for _, c := range cases {
		n, err := ComponentFor(k, c.field)
		if err != nil {
			t.Fatalf("%s: %v", c.field, err)
		}
		if n.Kind != c.kind || n.Ordinal != c.ord {
			t.Errorf("%s -> %s/%d, want %s/%d", c.field, n.Kind, n.Ordinal, c.kind, c.ord)
		}
	}
	if _, err := ComponentFor(k, "1 minute"); err == nil {
		t.Error("non-instance field resolved")
	}
	if _, err := ComponentFor(k, "_cpu999"); err == nil {
		t.Error("out-of-range ordinal resolved")
	}
}

func TestRootCausePathAndReport(t *testing.T) {
	k := testKB(t)
	f := Finding{
		Detector: "stall", Measurement: "perfevent_hwcounters_CYC",
		Field: "_cpu3", Severity: Critical, Message: "counter frozen",
	}
	v, err := RootCausePath(k, f)
	if err != nil {
		t.Fatal(err)
	}
	// thread -> core -> socket -> system.
	if len(v.Nodes) != 4 || v.Nodes[0].Kind != ontology.KindThread {
		t.Fatalf("path: %d nodes, first %s", len(v.Nodes), v.Nodes[0].Kind)
	}
	out := Report(k, []Finding{f})
	if !strings.Contains(out, "critical") || !strings.Contains(out, "thread(cpu3)") {
		t.Errorf("report:\n%s", out)
	}
	if !strings.Contains(Report(k, nil), "no anomalies") {
		t.Error("empty report wrong")
	}
}
