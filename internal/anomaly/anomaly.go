// Package anomaly implements the automated anomaly detection the KB
// enables (paper §III-B: "Employing a tree-structured KB enables fully
// automated performance monitoring, anomaly detection and dashboards").
// Detectors scan the time-series rows an observation links to; findings
// name the component (via the field/instance name) so the focus view can
// "investigate the root cause of anomalies" along the path to the root.
package anomaly

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"pmove/internal/kb"
	"pmove/internal/tsdb"
)

// Severity grades a finding.
type Severity int

// Severity levels.
const (
	Info Severity = iota
	Warning
	Critical
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Critical:
		return "critical"
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// Finding is one detected anomaly.
type Finding struct {
	Detector    string
	Measurement string
	Field       string // instance, e.g. "_cpu17" — names the component twin
	TimeNanos   int64
	Value       float64
	Severity    Severity
	Message     string
}

// Series is one (time, value) sequence extracted for a field.
type Series struct {
	Measurement string
	Field       string
	Times       []int64
	Values      []float64
}

// Detector inspects one series and reports findings.
type Detector interface {
	Name() string
	Detect(s Series) []Finding
}

// Threshold flags values outside [Min, Max].
type Threshold struct {
	Min, Max float64
	Sev      Severity
}

// Name implements Detector.
func (t Threshold) Name() string { return "threshold" }

// Detect implements Detector.
func (t Threshold) Detect(s Series) []Finding {
	var out []Finding
	for i, v := range s.Values {
		if v < t.Min || v > t.Max {
			out = append(out, Finding{
				Detector: t.Name(), Measurement: s.Measurement, Field: s.Field,
				TimeNanos: s.Times[i], Value: v, Severity: t.Sev,
				Message: fmt.Sprintf("value %.4g outside [%.4g, %.4g]", v, t.Min, t.Max),
			})
		}
	}
	return out
}

// ZScore flags values more than K standard deviations from the series
// mean. Series shorter than MinSamples are skipped (no stable baseline).
type ZScore struct {
	K          float64
	MinSamples int
	Sev        Severity
}

// Name implements Detector.
func (z ZScore) Name() string { return "zscore" }

// Detect implements Detector.
func (z ZScore) Detect(s Series) []Finding {
	min := z.MinSamples
	if min < 4 {
		min = 4
	}
	if len(s.Values) < min {
		return nil
	}
	mean, std := meanStd(s.Values)
	if std == 0 {
		return nil
	}
	k := z.K
	if k == 0 {
		k = 3
	}
	var out []Finding
	for i, v := range s.Values {
		if math.Abs(v-mean)/std > k {
			out = append(out, Finding{
				Detector: z.Name(), Measurement: s.Measurement, Field: s.Field,
				TimeNanos: s.Times[i], Value: v, Severity: z.Sev,
				Message: fmt.Sprintf("|z| = %.1f (mean %.4g, std %.4g)", math.Abs(v-mean)/std, mean, std),
			})
		}
	}
	return out
}

// Stall flags cumulative counters that stop advancing: a window of
// consecutive identical readings on a counter that had been moving.
// This catches the frozen-sampler failure mode behind Table III's zeros.
type Stall struct {
	Window int
	Sev    Severity
}

// Name implements Detector.
func (d Stall) Name() string { return "stall" }

// Detect implements Detector.
func (d Stall) Detect(s Series) []Finding {
	w := d.Window
	if w < 3 {
		w = 3
	}
	if len(s.Values) < w+1 {
		return nil
	}
	moved := false
	run := 1
	var out []Finding
	for i := 1; i < len(s.Values); i++ {
		if s.Values[i] == s.Values[i-1] {
			run++
			if moved && run == w {
				out = append(out, Finding{
					Detector: d.Name(), Measurement: s.Measurement, Field: s.Field,
					TimeNanos: s.Times[i], Value: s.Values[i], Severity: d.Sev,
					Message: fmt.Sprintf("counter frozen for %d consecutive samples", w),
				})
			}
		} else {
			if s.Values[i] > s.Values[i-1] {
				moved = true
			}
			run = 1
		}
	}
	return out
}

// Imbalance compares sibling instances of one measurement at each
// timestamp and flags instances persistently far from the per-timestamp
// median — the load-imbalance signal of the paper's introduction
// ("load imbalances … can result in up to a 100% difference in
// performance"). It is a cross-series detector, so it runs on the whole
// measurement rather than per series.
type Imbalance struct {
	// RelTolerance is the allowed relative deviation from the median.
	RelTolerance float64
	// MinFraction is the fraction of timestamps an instance must deviate
	// in before it is reported.
	MinFraction float64
	Sev         Severity
}

// Name identifies the detector.
func (d Imbalance) Name() string { return "imbalance" }

// DetectAcross runs over all series of one measurement.
func (d Imbalance) DetectAcross(series []Series) []Finding {
	if len(series) < 2 {
		return nil
	}
	tol := d.RelTolerance
	if tol == 0 {
		tol = 0.5
	}
	frac := d.MinFraction
	if frac == 0 {
		frac = 0.5
	}
	// Align by index (sessions sample all instances at the same ticks).
	n := len(series[0].Values)
	for _, s := range series {
		if len(s.Values) < n {
			n = len(s.Values)
		}
	}
	if n == 0 {
		return nil
	}
	deviant := make([]int, len(series))
	// Only timestamps with a usable (nonzero) median are comparable:
	// zero-batch rows from the §V-A transmission artefacts are skipped.
	comparable := 0
	for i := 0; i < n; i++ {
		vals := make([]float64, len(series))
		for j, s := range series {
			vals[j] = s.Values[i]
		}
		med := median(vals)
		if med == 0 {
			continue
		}
		comparable++
		for j := range series {
			if math.Abs(vals[j]-med)/math.Abs(med) > tol {
				deviant[j]++
			}
		}
	}
	if comparable == 0 {
		return nil
	}
	var out []Finding
	for j, s := range series {
		if float64(deviant[j]) >= frac*float64(comparable) {
			out = append(out, Finding{
				Detector: d.Name(), Measurement: s.Measurement, Field: s.Field,
				TimeNanos: s.Times[n-1], Severity: d.Sev,
				Message: fmt.Sprintf("instance deviates from the sibling median in %d/%d samples", deviant[j], comparable),
			})
		}
	}
	return out
}

// Scanner binds detectors to a time-series database.
type Scanner struct {
	Detectors []Detector
	Imbalance *Imbalance
}

// DefaultScanner returns a scanner with the standard detector set.
func DefaultScanner() *Scanner {
	return &Scanner{
		Detectors: []Detector{
			ZScore{K: 4, MinSamples: 8, Sev: Warning},
			Stall{Window: 5, Sev: Critical},
		},
		Imbalance: &Imbalance{RelTolerance: 0.6, MinFraction: 0.6, Sev: Warning},
	}
}

// fetch extracts all per-field series of a measurement under a tag.
func fetch(db *tsdb.DB, measurement, tag string, fields []string) ([]Series, error) {
	q := &tsdb.Query{Fields: fields, Measurement: measurement, TagFilter: map[string]string{}}
	if len(fields) == 0 {
		q.Fields = []string{"*"}
	}
	if tag != "" {
		q.TagFilter["tag"] = tag
	}
	res, err := db.Execute(q)
	if err != nil {
		return nil, err
	}
	byField := map[string]*Series{}
	var order []string
	for _, row := range res.Rows {
		for f, v := range row.Values {
			s, ok := byField[f]
			if !ok {
				s = &Series{Measurement: measurement, Field: f}
				byField[f] = s
				order = append(order, f)
			}
			s.Times = append(s.Times, row.Time)
			s.Values = append(s.Values, v)
		}
	}
	sort.Strings(order)
	out := make([]Series, 0, len(order))
	for _, f := range order {
		out = append(out, *byField[f])
	}
	return out, nil
}

// deltas converts a cumulative counter series into per-interval
// increments (length-1 shorter).
func deltas(s Series) Series {
	if len(s.Values) < 2 {
		return Series{Measurement: s.Measurement, Field: s.Field}
	}
	out := Series{Measurement: s.Measurement, Field: s.Field}
	for i := 1; i < len(s.Values); i++ {
		d := s.Values[i] - s.Values[i-1]
		if d < 0 {
			d = 0 // counter reset or noise dip
		}
		out.Times = append(out.Times, s.Times[i])
		out.Values = append(out.Values, d)
	}
	return out
}

// isCounterMeasurement reports whether a measurement holds cumulative
// hardware counters (the perfevent export namespace), which cross-series
// detectors must difference before comparing.
func isCounterMeasurement(measurement string) bool {
	return strings.HasPrefix(measurement, "perfevent_hwcounters_")
}

// ScanObservation runs every detector over the metrics an observation
// links to, returning findings sorted by severity (highest first) then
// time.
func (sc *Scanner) ScanObservation(db *tsdb.DB, o *kb.Observation) ([]Finding, error) {
	var out []Finding
	for _, m := range o.Metrics {
		series, err := fetch(db, m.Measurement, o.Tag, m.Fields)
		if err != nil {
			return nil, fmt.Errorf("anomaly: %s: %w", m.Measurement, err)
		}
		for _, s := range series {
			for _, det := range sc.Detectors {
				out = append(out, det.Detect(s)...)
			}
		}
		if sc.Imbalance != nil {
			cmp := series
			if isCounterMeasurement(m.Measurement) {
				// Cumulative counters carry history from earlier phases;
				// imbalance is a property of the rates inside this window.
				cmp = make([]Series, len(series))
				for i, s := range series {
					cmp[i] = deltas(s)
				}
			}
			out = append(out, sc.Imbalance.DetectAcross(cmp)...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Severity != out[j].Severity {
			return out[i].Severity > out[j].Severity
		}
		return out[i].TimeNanos < out[j].TimeNanos
	})
	return out, nil
}

func meanStd(vs []float64) (mean, std float64) {
	for _, v := range vs {
		mean += v
	}
	mean /= float64(len(vs))
	for _, v := range vs {
		std += (v - mean) * (v - mean)
	}
	std = math.Sqrt(std / float64(len(vs)))
	return mean, std
}

func median(vs []float64) float64 {
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
