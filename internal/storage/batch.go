package storage

import (
	"encoding/binary"
	"fmt"
)

// Batch records: group commit packs a whole write batch into ONE framed
// WAL record, so the batch costs a single fsync and recovery is atomic
// by construction — a crash mid-append leaves one torn frame, which the
// recovering reader truncates, discarding the whole batch rather than a
// prefix of it. The envelope below frames the batch's sub-bodies inside
// the record data; the caller's per-item codec (tsdb line protocol,
// docdb JSON ops) is untouched.
//
// Layout, all varints unsigned LEB128 (encoding/binary):
//
//	[4B magic][uvarint count][uvarint len, len bytes] x count
//
// The magic starts with a NUL so no line-protocol or JSON record body
// can collide with it (both stores reject empty keys/measurements, and
// neither codec emits a leading NUL); IsBatchBody is therefore a safe
// discriminator over mixed old/new WALs — single-item records keep
// their plain bodies and replay exactly as before.

// batchMagic tags a batch-envelope record body.
var batchMagic = [4]byte{0x00, 0xB7, 'G', 'C'}

// EncodeBatchBody frames the given sub-bodies into one record body for
// a group-committed WAL append.
func EncodeBatchBody(items [][]byte) []byte {
	size := len(batchMagic) + binary.MaxVarintLen64
	for _, it := range items {
		size += binary.MaxVarintLen64 + len(it)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, batchMagic[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(items)))
	for _, it := range items {
		buf = binary.AppendUvarint(buf, uint64(len(it)))
		buf = append(buf, it...)
	}
	return buf
}

// IsBatchBody reports whether a recovered record body is a batch
// envelope (EncodeBatchBody output) rather than a plain single-item
// body.
func IsBatchBody(b []byte) bool {
	return len(b) >= len(batchMagic) && [4]byte(b[:4]) == batchMagic
}

// DecodeBatchBody splits a batch envelope back into its sub-bodies. The
// returned slices alias b. The envelope lives inside a CRC-framed WAL
// record, so corruption here means the record codec has a bug, not that
// the disk lied — it is reported as ErrCorruptRecord all the same.
func DecodeBatchBody(b []byte) ([][]byte, error) {
	if !IsBatchBody(b) {
		return nil, fmt.Errorf("%w: not a batch envelope", ErrCorruptRecord)
	}
	rest := b[len(batchMagic):]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad batch count", ErrCorruptRecord)
	}
	rest = rest[n:]
	if count > uint64(len(rest))+1 {
		// Each item costs at least one length byte; an implausible count
		// would otherwise allocate unboundedly.
		return nil, fmt.Errorf("%w: batch claims %d items in %d bytes", ErrCorruptRecord, count, len(rest))
	}
	items := make([][]byte, 0, count)
	for i := uint64(0); i < count; i++ {
		sz, n := binary.Uvarint(rest)
		if n <= 0 || sz > uint64(len(rest[n:])) {
			return nil, fmt.Errorf("%w: batch item %d overruns the envelope", ErrCorruptRecord, i)
		}
		items = append(items, rest[n:n+int(sz)])
		rest = rest[n+int(sz):]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after batch", ErrCorruptRecord, len(rest))
	}
	return items, nil
}
