package storage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func mustAppend(t *testing.T, w *WAL, data string) uint64 {
	t.Helper()
	seq, err := w.Append([]byte(data))
	if err != nil {
		t.Fatalf("Append(%q): %v", data, err)
	}
	return seq
}

func openWAL(t *testing.T, path string, pol FsyncPolicy) (*WAL, []Record, RecoveryInfo) {
	t.Helper()
	w, recs, info, err := OpenWAL(path, pol)
	if err != nil {
		t.Fatalf("OpenWAL(%s): %v", path, err)
	}
	return w, recs, info
}

func TestRecordRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAA}, 4096)}
	var img []byte
	var err error
	for i, p := range payloads {
		img, err = AppendRecord(img, uint64(i)+7, p)
		if err != nil {
			t.Fatalf("AppendRecord #%d: %v", i, err)
		}
	}
	recs, clean, err := DecodeAll(img)
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	if clean != len(img) {
		t.Fatalf("clean prefix %d != image %d", clean, len(img))
	}
	if len(recs) != len(payloads) {
		t.Fatalf("decoded %d records, want %d", len(recs), len(payloads))
	}
	for i, r := range recs {
		if r.Seq != uint64(i)+7 {
			t.Errorf("record %d: seq %d, want %d", i, r.Seq, i+7)
		}
		if !bytes.Equal(r.Data, payloads[i]) {
			t.Errorf("record %d: data mismatch", i)
		}
	}
}

func TestRecordRejectsOversize(t *testing.T) {
	if _, err := AppendRecord(nil, 1, make([]byte, MaxRecord+1)); err == nil {
		t.Fatal("AppendRecord accepted an oversize record")
	}
}

// TestOpenEmptyWAL: a missing file and a zero-byte file both recover to
// an empty, appendable log.
func TestOpenEmptyWAL(t *testing.T) {
	for name, create := range map[string]bool{"missing": false, "zero-byte": true} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wal.log")
			if create {
				if err := os.WriteFile(path, nil, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			w, recs, info := openWAL(t, path, FsyncAlways)
			defer w.Close()
			if len(recs) != 0 || info.Torn || info.TornBytes != 0 {
				t.Fatalf("empty WAL recovered recs=%d info=%+v", len(recs), info)
			}
			if seq := mustAppend(t, w, "first"); seq != 1 {
				t.Fatalf("first append seq=%d, want 1", seq)
			}
		})
	}
}

func TestWALAppendRecoverRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, _ := openWAL(t, path, FsyncAlways)
	want := []string{"alpha", "beta", "gamma"}
	for _, s := range want {
		mustAppend(t, w, s)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	w2, recs, info := openWAL(t, path, FsyncAlways)
	defer w2.Close()
	if info.Torn {
		t.Fatalf("clean log reported torn: %+v", info)
	}
	if len(recs) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if string(r.Data) != want[i] {
			t.Errorf("record %d: %q, want %q", i, r.Data, want[i])
		}
	}
	// Appends resume the sequence, not restart it.
	if seq := mustAppend(t, w2, "delta"); seq != uint64(len(want))+1 {
		t.Fatalf("post-recovery seq=%d, want %d", seq, len(want)+1)
	}
}

// TestTornFinalRecord: truncating mid-frame (a crash during the last
// append) recovers the clean prefix and reports the tear.
func TestTornFinalRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, _ := openWAL(t, path, FsyncAlways)
	mustAppend(t, w, "keep-1")
	mustAppend(t, w, "keep-2")
	goodLen := w.Size()
	mustAppend(t, w, "torn-away-by-the-crash")
	w.Close()

	for _, cut := range []int64{1, 3, 9, 12} { // into header, into payload
		img, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		torn := filepath.Join(t.TempDir(), "torn.log")
		if err := os.WriteFile(torn, img[:goodLen+cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w2, recs, info := openWAL(t, torn, FsyncAlways)
		if !info.Torn || info.TornBytes != cut {
			t.Fatalf("cut=%d: info=%+v, want torn with %d bytes", cut, info, cut)
		}
		if len(recs) != 2 || string(recs[1].Data) != "keep-2" {
			t.Fatalf("cut=%d: recovered %d records", cut, len(recs))
		}
		// The file itself was truncated back to the clean prefix.
		if st, _ := os.Stat(torn); st.Size() != goodLen {
			t.Fatalf("cut=%d: file %d bytes after recovery, want %d", cut, st.Size(), goodLen)
		}
		// And the log is immediately appendable with a coherent sequence.
		if seq := mustAppend(t, w2, "resumed"); seq != 3 {
			t.Fatalf("cut=%d: resumed seq=%d, want 3", cut, seq)
		}
		w2.Close()
	}
}

// TestCorruptCRCMidFile: a flipped byte in a record that intact records
// follow is bit rot, and recovery must refuse rather than silently drop
// the good tail.
func TestCorruptCRCMidFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, _ := openWAL(t, path, FsyncAlways)
	mustAppend(t, w, "first-record-here")
	firstEnd := w.Size()
	mustAppend(t, w, "second")
	mustAppend(t, w, "third")
	w.Close()
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	img[firstEnd-2] ^= 0xFF // flip a byte inside record 1's payload
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, _, oerr := OpenWAL(path, FsyncAlways)
	if oerr == nil {
		t.Fatal("OpenWAL accepted mid-file corruption")
	}
	if !errors.Is(oerr, ErrCorruptRecord) {
		t.Fatalf("error %v, want ErrCorruptRecord", oerr)
	}
	if IsTorn(oerr) {
		t.Fatalf("mid-file corruption classified as torn: %v", oerr)
	}
}

// TestCorruptFinalRecord: a CRC mismatch on the very last record is
// indistinguishable from a partially flushed final sector, so it is
// truncated like a torn tail rather than erroring.
func TestCorruptFinalRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, _ := openWAL(t, path, FsyncAlways)
	mustAppend(t, w, "keep")
	mustAppend(t, w, "corrupted-in-place")
	w.Close()
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)-1] ^= 0x01
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, recs, info := openWAL(t, path, FsyncAlways)
	defer w2.Close()
	if !info.Torn || len(recs) != 1 || string(recs[0].Data) != "keep" {
		t.Fatalf("recovered recs=%d info=%+v, want 1 record + torn", len(recs), info)
	}
}

// TestCrashLosesOnlyUnsyncedSuffix: the crash simulation discards
// exactly what a real crash could — nothing under always, the unsynced
// suffix under never.
func TestCrashLosesOnlyUnsyncedSuffix(t *testing.T) {
	t.Run("always", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "wal.log")
		w, _, _ := openWAL(t, path, FsyncAlways)
		mustAppend(t, w, "acked-1")
		mustAppend(t, w, "acked-2")
		if err := w.Crash(); err != nil {
			t.Fatalf("Crash: %v", err)
		}
		w2, recs, _ := openWAL(t, path, FsyncAlways)
		defer w2.Close()
		if len(recs) != 2 {
			t.Fatalf("fsync=always crash lost records: recovered %d, want 2", len(recs))
		}
	})
	t.Run("never", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "wal.log")
		w, _, _ := openWAL(t, path, FsyncNever)
		mustAppend(t, w, "synced")
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
		mustAppend(t, w, "unsynced-1")
		mustAppend(t, w, "unsynced-2")
		if err := w.Crash(); err != nil {
			t.Fatalf("Crash: %v", err)
		}
		w2, recs, info := openWAL(t, path, FsyncNever)
		defer w2.Close()
		if len(recs) != 1 || string(recs[0].Data) != "synced" {
			t.Fatalf("fsync=never crash recovered %d records (info=%+v), want just the synced one", len(recs), info)
		}
	})
}

func TestStoreSnapshotOnly(t *testing.T) {
	dir := t.TempDir()
	s, rec, err := Open(dir, FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	if _, err := s.Append([]byte("pre-snapshot")); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact([]byte("STATE-1")); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Snapshot present, WAL empty: recovery is snapshot-only.
	s2, rec2, err := Open(dir, FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if string(rec2.Snapshot) != "STATE-1" {
		t.Fatalf("snapshot %q, want STATE-1", rec2.Snapshot)
	}
	if len(rec2.Records) != 0 {
		t.Fatalf("snapshot-only recovery returned %d WAL records", len(rec2.Records))
	}
	// Fresh appends land above the snapshot horizon.
	seq, err := s2.Append([]byte("post-snapshot"))
	if err != nil {
		t.Fatal(err)
	}
	if seq <= rec2.SnapshotSeq {
		t.Fatalf("post-snapshot seq %d not above snapshot horizon %d", seq, rec2.SnapshotSeq)
	}
}

// TestStoreSnapshotWALOverlap: a WAL that still holds records the
// snapshot covers (crash between snapshot write and WAL rotation) must
// not replay them twice.
func TestStoreSnapshotWALOverlap(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Append([]byte(fmt.Sprintf("old-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Hand-write the snapshot covering seq 1..3 WITHOUT rotating the WAL
	// — exactly the state a crash inside Compact leaves behind.
	img, err := AppendRecord(nil, 3, []byte("STATE-COVERS-3"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapshotFileName), img, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([]byte("new-4")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec, err := Open(dir, FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if string(rec.Snapshot) != "STATE-COVERS-3" || rec.SnapshotSeq != 3 {
		t.Fatalf("snapshot %q seq %d", rec.Snapshot, rec.SnapshotSeq)
	}
	if len(rec.Records) != 1 || string(rec.Records[0].Data) != "new-4" {
		t.Fatalf("overlap not filtered: recovered %d records %q", len(rec.Records), rec.Records)
	}
}

func TestStoreCorruptSnapshotErrors(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact([]byte("STATE")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	snap := filepath.Join(dir, snapshotFileName)
	img, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)-1] ^= 0xFF
	if err := os.WriteFile(snap, img, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, FsyncAlways); err == nil {
		t.Fatal("Open accepted a corrupt snapshot")
	}
}

func TestRewriteWAL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	w, _, _ := openWAL(t, path, FsyncAlways)
	mustAppend(t, w, "stale-1")
	mustAppend(t, w, "stale-2")
	w.Close()
	w2, recs, err := RewriteWAL(path, FsyncAlways, [][]byte{[]byte("kept")})
	if err != nil {
		t.Fatalf("RewriteWAL: %v", err)
	}
	defer w2.Close()
	if len(recs) != 1 || string(recs[0].Data) != "kept" || recs[0].Seq != 1 {
		t.Fatalf("rewritten log holds %v", recs)
	}
	// Rewriting to empty truncates the journal entirely.
	w2.Close()
	w3, recs3, err := RewriteWAL(path, FsyncAlways, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if len(recs3) != 0 || w3.Size() != 0 {
		t.Fatalf("empty rewrite left %d records, %d bytes", len(recs3), w3.Size())
	}
}

func TestFsyncIntervalPolicy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, _, err := OpenWAL(path, FsyncInterval)
	if err != nil {
		t.Fatal(err)
	}
	w.SetSyncInterval(time.Hour) // no interval flush during the test
	mustAppend(t, w, "a")
	mustAppend(t, w, "b")
	if err := w.Crash(); err != nil {
		t.Fatal(err)
	}
	// Nothing synced: interval crash loses the suffix but stays clean.
	w2, recs, info := openWAL(t, path, FsyncInterval)
	defer w2.Close()
	if info.Torn {
		t.Fatalf("interval crash left a torn tail: %+v", info)
	}
	if len(recs) > 1 {
		t.Fatalf("interval crash kept %d unsynced records", len(recs))
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, ok := range []string{"", "always", "interval", "never"} {
		if _, err := ParseFsyncPolicy(ok); err != nil {
			t.Errorf("ParseFsyncPolicy(%q): %v", ok, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("ParseFsyncPolicy accepted junk")
	}
}
