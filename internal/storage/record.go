// Package storage is the durability substrate for the embedded database
// servers: a length-prefixed, CRC32C-framed write-ahead log with a
// configurable fsync policy, plus atomic snapshot-and-compact. The tsdb
// and docdb stores log every accepted mutation through it and replay
// snapshot+WAL on open, so a killed server restarted from its data
// directory recovers every acknowledged write (fsync=always) or a clean
// prefix of them (weaker policies) — never a torn record.
//
// The paper's pipeline (probe → KB → Grafana) treats the monitoring
// record itself as the product; the HPC-operations literature stresses
// that gaps in the monitoring archive are operational incidents. This
// package is what keeps a node failure from silently discarding the
// archive the rest of the stack works so hard to deliver.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Wire framing, little-endian:
//
//	[4B payload length n][4B CRC32C of payload][payload = 8B seq + data]
//
// The CRC covers the payload only (seq + data); the length prefix is
// validated by range. A record is torn when the file ends before the
// frame does — the signature of a crash mid-append — and corrupt when
// the full frame is present but the CRC disagrees.
const (
	// frameHeaderSize is the fixed prefix: length + CRC.
	frameHeaderSize = 8
	// seqSize is the sequence number leading every payload.
	seqSize = 8
	// MaxRecord bounds one record's data, keeping a corrupted length
	// prefix from allocating gigabytes on recovery.
	MaxRecord = 16 << 20
)

// Typed recovery errors. ErrTornRecord marks an incomplete frame at the
// tail — the expected residue of a crash mid-append, silently truncated
// by the recovering reader. ErrCorruptRecord marks a full frame whose
// CRC disagrees; mid-file that is data corruption, not a torn write, and
// recovery refuses to guess past it.
var (
	ErrTornRecord    = errors.New("storage: torn record")
	ErrCorruptRecord = errors.New("storage: corrupt record")
)

// Record is one recovered WAL entry: the sequence number the appender
// assigned and the opaque data the caller logged.
type Record struct {
	Seq  uint64
	Data []byte
}

// castagnoli is the CRC32C table (the polynomial with hardware support
// on both amd64 and arm64, and the one real WAL implementations use).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendRecord frames one record onto buf and returns the extended
// buffer, mirroring the append-style codecs in encoding/binary.
func AppendRecord(buf []byte, seq uint64, data []byte) ([]byte, error) {
	if len(data) > MaxRecord {
		return buf, fmt.Errorf("storage: record data %d bytes exceeds MaxRecord %d", len(data), MaxRecord)
	}
	payloadLen := seqSize + len(data)
	var hdr [frameHeaderSize + seqSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(payloadLen))
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	crc := crc32.Update(0, castagnoli, hdr[8:16])
	crc = crc32.Update(crc, castagnoli, data)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	buf = append(buf, hdr[:]...)
	return append(buf, data...), nil
}

// DecodeRecord decodes the first record in b, returning it and the
// number of bytes consumed. An incomplete frame returns ErrTornRecord; a
// complete frame with a CRC mismatch or an out-of-range length returns
// ErrCorruptRecord. The returned Data aliases b.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < frameHeaderSize {
		return Record{}, 0, fmt.Errorf("%w: %d-byte tail is shorter than a frame header", ErrTornRecord, len(b))
	}
	payloadLen := int(binary.LittleEndian.Uint32(b[0:4]))
	if payloadLen < seqSize || payloadLen > MaxRecord+seqSize {
		return Record{}, 0, fmt.Errorf("%w: implausible payload length %d", ErrCorruptRecord, payloadLen)
	}
	if len(b) < frameHeaderSize+payloadLen {
		return Record{}, 0, fmt.Errorf("%w: frame wants %d payload bytes, file has %d",
			ErrTornRecord, payloadLen, len(b)-frameHeaderSize)
	}
	want := binary.LittleEndian.Uint32(b[4:8])
	payload := b[frameHeaderSize : frameHeaderSize+payloadLen]
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return Record{}, 0, fmt.Errorf("%w: CRC %08x != stored %08x", ErrCorruptRecord, got, want)
	}
	return Record{
		Seq:  binary.LittleEndian.Uint64(payload[0:seqSize]),
		Data: payload[seqSize:],
	}, frameHeaderSize + payloadLen, nil
}

// DecodeAll walks a WAL image record by record. It returns the decoded
// records, the byte offset of the clean prefix, and how the walk ended:
//
//   - nil error: the whole image decoded (cleanLen == len(b)).
//   - ErrTornRecord: the tail is an incomplete frame — a crash
//     mid-append; the records before cleanLen are intact.
//   - ErrCorruptRecord at the tail (the bad frame is the last thing in
//     the image): reported as ErrTornRecord too, since a partially
//     flushed final sector is indistinguishable from a torn append.
//   - ErrCorruptRecord mid-file (valid data demonstrably follows the bad
//     frame): returned as-is. That is bit rot, not a crash artifact, and
//     truncating would silently discard good acknowledged records.
func DecodeAll(b []byte) (recs []Record, cleanLen int, err error) {
	off := 0
	for off < len(b) {
		rec, n, derr := DecodeRecord(b[off:])
		if derr == nil {
			recs = append(recs, rec)
			off += n
			continue
		}
		if errors.Is(derr, ErrCorruptRecord) && !tailFrame(b[off:]) {
			return recs, off, fmt.Errorf("%w at offset %d", derr, off)
		}
		if errors.Is(derr, ErrCorruptRecord) {
			derr = fmt.Errorf("%w: corrupt final frame at offset %d: %v", ErrTornRecord, off, derr)
		}
		return recs, off, derr
	}
	return recs, off, nil
}

// tailFrame reports whether the bad frame starting at b is the last
// frame in the image — i.e. whether its declared extent reaches (or
// overruns) the end of the buffer, leaving no bytes that could belong to
// a later record.
func tailFrame(b []byte) bool {
	if len(b) < frameHeaderSize {
		return true
	}
	payloadLen := int(binary.LittleEndian.Uint32(b[0:4]))
	if payloadLen < seqSize || payloadLen > MaxRecord+seqSize {
		// The length itself is garbage: frame extent unknowable. Only
		// treat it as the tail when nothing follows the header region.
		return len(b) <= frameHeaderSize+seqSize
	}
	return len(b) <= frameHeaderSize+payloadLen
}
