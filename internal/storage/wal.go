package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// FsyncPolicy says when the WAL forces appended records to stable
// storage. The policy is the durability/latency dial the paper's
// "performance monitoring record must survive" requirement turns on:
//
//   - FsyncAlways: fsync before every append returns. An acknowledged
//     write is on disk; a crash loses nothing acknowledged.
//   - FsyncInterval: fsync at most every SyncInterval. A crash loses at
//     most the last interval's worth of acknowledged writes — but always
//     recovers a clean prefix (never a torn record).
//   - FsyncNever: leave flushing to the OS. Fastest; a crash may lose
//     any unflushed suffix, still recovering a clean prefix.
type FsyncPolicy string

const (
	FsyncAlways   FsyncPolicy = "always"
	FsyncInterval FsyncPolicy = "interval"
	FsyncNever    FsyncPolicy = "never"
)

// DefaultSyncInterval is the FsyncInterval flush period when unset.
const DefaultSyncInterval = 100 * time.Millisecond

// ParseFsyncPolicy validates a policy string (the -fsync flag value).
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch FsyncPolicy(s) {
	case FsyncAlways, FsyncInterval, FsyncNever:
		return FsyncPolicy(s), nil
	case "":
		return FsyncAlways, nil
	}
	return "", fmt.Errorf("storage: unknown fsync policy %q (want always|interval|never)", s)
}

// RecoveryInfo reports what opening a WAL found.
type RecoveryInfo struct {
	// Records is how many intact records the clean prefix held.
	Records int
	// TornBytes is how many trailing bytes were discarded as a torn or
	// partially flushed final record (0 for a clean log).
	TornBytes int64
	// Torn reports whether a torn tail was truncated.
	Torn bool
}

// WAL is an append-only, CRC-framed log file. Appends are serialized;
// the appender tracks the synced prefix so Crash (the test-only
// simulation of an OS crash) can discard exactly the bytes a real crash
// could lose under the configured policy.
type WAL struct {
	mu  sync.Mutex
	f   *os.File
	pol FsyncPolicy
	// interval is the FsyncInterval flush period.
	interval time.Duration
	lastSync time.Time

	nextSeq uint64
	size    int64 // bytes written (memory view)
	synced  int64 // bytes known to be on stable storage

	buf []byte // scratch frame buffer, reused across appends
}

// OpenWAL opens (creating if needed) the log at path, replays it, and
// positions the appender after the clean prefix. A torn or corrupt final
// record is truncated away (that is what a crash mid-append leaves); a
// corrupt record with intact records after it is an error — bit rot must
// not be silently discarded. The returned records' Data slices are
// copies and safe to retain.
func OpenWAL(path string, pol FsyncPolicy) (*WAL, []Record, RecoveryInfo, error) {
	if _, err := ParseFsyncPolicy(string(pol)); err != nil {
		return nil, nil, RecoveryInfo{}, err
	}
	img, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, RecoveryInfo{}, fmt.Errorf("storage: read %s: %w", path, err)
	}
	recs, cleanLen, derr := DecodeAll(img)
	info := RecoveryInfo{Records: len(recs), TornBytes: int64(len(img) - cleanLen)}
	if derr != nil {
		if !IsTorn(derr) {
			return nil, nil, info, fmt.Errorf("storage: %s: %w", path, derr)
		}
		info.Torn = true
	}
	// Deep-copy record data out of the file image before it goes away.
	for i := range recs {
		recs[i].Data = append([]byte(nil), recs[i].Data...)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, info, fmt.Errorf("storage: open %s: %w", path, err)
	}
	if info.Torn {
		if err := f.Truncate(int64(cleanLen)); err != nil {
			f.Close()
			return nil, nil, info, fmt.Errorf("storage: truncate torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, info, fmt.Errorf("storage: sync %s: %w", path, err)
		}
	}
	if _, err := f.Seek(int64(cleanLen), 0); err != nil {
		f.Close()
		return nil, nil, info, fmt.Errorf("storage: seek %s: %w", path, err)
	}
	w := &WAL{
		f:        f,
		pol:      pol,
		interval: DefaultSyncInterval,
		nextSeq:  1,
		size:     int64(cleanLen),
		synced:   int64(cleanLen),
	}
	if n := len(recs); n > 0 {
		w.nextSeq = recs[n-1].Seq + 1
	}
	return w, recs, info, nil
}

// IsTorn reports whether a recovery error marks a torn (truncatable)
// tail rather than mid-file corruption.
func IsTorn(err error) bool {
	return errors.Is(err, ErrTornRecord)
}

// SetSyncInterval overrides the FsyncInterval flush period.
func (w *WAL) SetSyncInterval(d time.Duration) {
	w.mu.Lock()
	if d > 0 {
		w.interval = d
	}
	w.mu.Unlock()
}

// Append frames data, writes it, and applies the fsync policy. The
// returned sequence number identifies the record on recovery. When
// Append returns nil under FsyncAlways, the record is on stable storage.
func (w *WAL) Append(data []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return 0, fmt.Errorf("storage: append to closed WAL")
	}
	seq := w.nextSeq
	var err error
	w.buf, err = AppendRecord(w.buf[:0], seq, data)
	if err != nil {
		return 0, err
	}
	n, err := w.f.Write(w.buf)
	if err != nil {
		// A short frame write leaves a torn tail; recovery truncates it,
		// and the in-memory size keeps matching the file.
		w.size += int64(n)
		return 0, fmt.Errorf("storage: append: %w", err)
	}
	w.size += int64(n)
	w.nextSeq++
	switch w.pol {
	case FsyncAlways:
		if err := w.syncLocked(); err != nil {
			return 0, err
		}
	case FsyncInterval:
		if time.Since(w.lastSync) >= w.interval {
			if err := w.syncLocked(); err != nil {
				return 0, err
			}
		}
	}
	return seq, nil
}

// Sync forces everything appended so far to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("storage: fsync: %w", err)
	}
	w.synced = w.size
	w.lastSync = time.Now()
	return nil
}

// NextSeq returns the sequence number the next append will get.
func (w *WAL) NextSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextSeq
}

// Size returns the current log length in bytes.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Close flushes (a graceful close never abandons acknowledged appends,
// whatever the policy) and closes the file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	serr := w.syncLocked()
	cerr := w.f.Close()
	w.f = nil
	if serr != nil {
		return serr
	}
	return cerr
}

// Crash simulates the process dying without a flush: everything past the
// last fsync is discarded (truncated away, since the page cache of a
// live OS would otherwise keep it) and the file handle dropped. Under
// FsyncAlways this loses nothing; under interval/never it loses exactly
// the unsynced suffix — which is what the recovery oracles need a kill
// fault to mean. Test/simulation use only.
func (w *WAL) Crash() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Truncate(w.synced)
	if serr := w.f.Sync(); err == nil {
		err = serr
	}
	cerr := w.f.Close()
	w.f = nil
	if err != nil {
		return fmt.Errorf("storage: crash truncate: %w", err)
	}
	return cerr
}

// RewriteWAL atomically replaces the log at path with exactly the given
// payloads (freshly renumbered from seq 1): the new image is written to
// a temp file, synced, and renamed over the old one. Used to compact the
// telemetry spill journal after a replay drains it.
func RewriteWAL(path string, pol FsyncPolicy, payloads [][]byte) (*WAL, []Record, error) {
	tmp := path + ".tmp"
	var img []byte
	var err error
	for i, p := range payloads {
		img, err = AppendRecord(img, uint64(i)+1, p)
		if err != nil {
			return nil, nil, err
		}
	}
	if err := writeFileAtomic(path, tmp, img); err != nil {
		return nil, nil, err
	}
	w, recs, _, err := OpenWAL(path, pol)
	return w, recs, err
}

// writeFileAtomic writes data to tmp, fsyncs it, renames it over dst and
// fsyncs the directory, so dst is either the old or the new content —
// never a prefix.
func writeFileAtomic(dst, tmp string, data []byte) error {
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: create %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, dst); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: rename %s: %w", tmp, err)
	}
	return syncDir(filepath.Dir(dst))
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("storage: sync dir %s: %w", dir, err)
	}
	return nil
}
