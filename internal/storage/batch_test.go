package storage

import (
	"bytes"
	"errors"
	"testing"
)

func TestBatchBodyRoundTrip(t *testing.T) {
	cases := [][][]byte{
		{[]byte("one")},
		{[]byte("a"), []byte(""), []byte("ccc")},
		{bytes.Repeat([]byte{0xFF}, 300), []byte("x")},
	}
	for _, items := range cases {
		enc := EncodeBatchBody(items)
		if !IsBatchBody(enc) {
			t.Fatalf("encoded batch not recognised: %q", enc)
		}
		dec, err := DecodeBatchBody(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(dec) != len(items) {
			t.Fatalf("decoded %d items, want %d", len(dec), len(items))
		}
		for i := range items {
			if !bytes.Equal(dec[i], items[i]) {
				t.Fatalf("item %d: got %q, want %q", i, dec[i], items[i])
			}
		}
	}
	// The empty batch round-trips too (callers never emit it, but the
	// codec must not choke on it).
	if dec, err := DecodeBatchBody(EncodeBatchBody(nil)); err != nil || len(dec) != 0 {
		t.Fatalf("empty batch: %v / %d items", err, len(dec))
	}
}

func TestBatchBodyDiscriminator(t *testing.T) {
	// Plain record bodies — line protocol, JSON — must never read as
	// batch envelopes: the magic's leading NUL cannot appear there.
	for _, plain := range []string{"cpu v=1 2", `{"op":"insert"}`, "", "\xb7GC"} {
		if IsBatchBody([]byte(plain)) {
			t.Fatalf("plain body %q misread as batch envelope", plain)
		}
	}
}

func TestBatchBodyCorruption(t *testing.T) {
	good := EncodeBatchBody([][]byte{[]byte("aaa"), []byte("bbb")})
	cases := map[string][]byte{
		"not an envelope":  []byte("cpu v=1"),
		"truncated header": good[:4],
		"truncated item":   good[:len(good)-2],
		"trailing bytes":   append(append([]byte{}, good...), 0x01),
		"implausible count": append(append([]byte{}, batchMagic[:]...),
			0xFF, 0xFF, 0xFF, 0xFF, 0x7F),
	}
	for name, b := range cases {
		if _, err := DecodeBatchBody(b); !errors.Is(err, ErrCorruptRecord) {
			t.Fatalf("%s: got %v, want ErrCorruptRecord", name, err)
		}
	}
}
