package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Data-directory layout. The snapshot is one framed record (seq = the
// last WAL sequence it covers, data = the caller's state encoding)
// written atomically; the WAL holds every mutation after it.
const (
	walFileName      = "wal.log"
	snapshotFileName = "snapshot.db"
)

// Recovered is everything Open found in a data directory.
type Recovered struct {
	// Snapshot is the last compacted state (nil when never compacted).
	Snapshot []byte
	// SnapshotSeq is the WAL sequence the snapshot covers through.
	SnapshotSeq uint64
	// Records are the WAL records newer than the snapshot, in append
	// order. Records the snapshot already covers (a crash between
	// snapshot write and WAL rotation leaves an overlap) are filtered
	// out, so replaying Snapshot then Records is idempotent.
	Records []Record
	// Info is the WAL recovery report (torn-tail truncation etc.).
	Info RecoveryInfo
}

// Store manages one data directory: a WAL for incremental mutations and
// an atomically replaced snapshot for compaction.
type Store struct {
	dir string
	pol FsyncPolicy
	wal *WAL
}

// Open creates/recovers the data directory and returns the store
// positioned for appending plus everything recovered from disk.
func Open(dir string, pol FsyncPolicy) (*Store, Recovered, error) {
	var rec Recovered
	if dir == "" {
		return nil, rec, fmt.Errorf("storage: empty data directory")
	}
	if _, err := ParseFsyncPolicy(string(pol)); err != nil {
		return nil, rec, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, rec, fmt.Errorf("storage: create %s: %w", dir, err)
	}
	snapPath := filepath.Join(dir, snapshotFileName)
	if img, err := os.ReadFile(snapPath); err == nil {
		// The snapshot is written atomically, so a partial file means the
		// medium corrupted it — never truncate-and-hope on the snapshot.
		r, n, derr := DecodeRecord(img)
		if derr != nil || n != len(img) {
			if derr == nil {
				derr = fmt.Errorf("%w: %d trailing bytes", ErrCorruptRecord, len(img)-n)
			}
			return nil, rec, fmt.Errorf("storage: snapshot %s: %w", snapPath, derr)
		}
		rec.Snapshot = append([]byte(nil), r.Data...)
		rec.SnapshotSeq = r.Seq
	} else if !os.IsNotExist(err) {
		return nil, rec, fmt.Errorf("storage: read snapshot: %w", err)
	}
	wal, recs, info, err := OpenWAL(filepath.Join(dir, walFileName), pol)
	if err != nil {
		return nil, rec, err
	}
	rec.Info = info
	for _, r := range recs {
		if r.Seq > rec.SnapshotSeq {
			rec.Records = append(rec.Records, r)
		}
	}
	// A WAL that restarted numbering below the snapshot horizon (the
	// rotation completed) must keep assigning sequences above it, or the
	// next compaction would mask fresh records.
	if wal.NextSeq() <= rec.SnapshotSeq {
		wal.mu.Lock()
		wal.nextSeq = rec.SnapshotSeq + 1
		wal.mu.Unlock()
	}
	return &Store{dir: dir, pol: pol, wal: wal}, rec, nil
}

// Dir returns the data directory path.
func (s *Store) Dir() string { return s.dir }

// Policy returns the fsync policy the store was opened with.
func (s *Store) Policy() FsyncPolicy { return s.pol }

// WALPath returns the log file path (fault injection targets it).
func (s *Store) WALPath() string { return filepath.Join(s.dir, walFileName) }

// WALSize returns the current log length in bytes.
func (s *Store) WALSize() int64 { return s.wal.Size() }

// SetSyncInterval overrides the FsyncInterval flush period.
func (s *Store) SetSyncInterval(d time.Duration) { s.wal.SetSyncInterval(d) }

// Append logs one mutation and returns its sequence number.
func (s *Store) Append(data []byte) (uint64, error) {
	return s.wal.Append(data)
}

// Sync forces the log to stable storage (flush-on-close and the
// interval policy's checkpoint both come through here).
func (s *Store) Sync() error { return s.wal.Sync() }

// Compact atomically writes state as the new snapshot covering every
// record logged so far, then resets the WAL. A crash between the two
// steps leaves an overlap that Open filters out by sequence number, so
// compaction is crash-safe at every point.
func (s *Store) Compact(state []byte) error {
	lastSeq := s.wal.NextSeq() - 1
	img, err := AppendRecord(nil, lastSeq, state)
	if err != nil {
		return err
	}
	// The snapshot must be durable before the WAL shrinks: sync the log
	// first so the snapshot never covers records the disk has not seen.
	if err := s.wal.Sync(); err != nil {
		return err
	}
	snapPath := filepath.Join(s.dir, snapshotFileName)
	if err := writeFileAtomic(snapPath, snapPath+".tmp", img); err != nil {
		return err
	}
	if err := s.wal.Close(); err != nil {
		return err
	}
	if err := os.Remove(s.WALPath()); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("storage: rotate wal: %w", err)
	}
	wal, _, _, err := OpenWAL(s.WALPath(), s.pol)
	if err != nil {
		return err
	}
	wal.mu.Lock()
	wal.nextSeq = lastSeq + 1
	wal.mu.Unlock()
	s.wal = wal
	return nil
}

// Close flushes and closes the store.
func (s *Store) Close() error { return s.wal.Close() }

// Crash simulates dying without a flush: the unsynced WAL suffix is
// discarded. Test/simulation use only — see WAL.Crash.
func (s *Store) Crash() error { return s.wal.Crash() }
