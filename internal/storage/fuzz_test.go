package storage

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzWALRecord throws arbitrary bytes at the WAL codec from both sides.
// As a WAL image, data must decode without panicking, the reported clean
// prefix must re-decode to exactly the same records, and the recovery
// classification must be one of the three documented outcomes. As record
// data, an append → decode round trip must be lossless, and a torn tail
// appended after the framed record must never damage it.
func FuzzWALRecord(f *testing.F) {
	// A well-formed two-record image, the same image torn mid-frame,
	// and assorted header-shaped garbage.
	img, _ := AppendRecord(nil, 1, []byte("cpu_idle,host=icl value=99"))
	img, _ = AppendRecord(img, 2, []byte(`{"op":"insert","doc":{"_id":7}}`))
	f.Add(img)
	f.Add(img[:len(img)-5])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Add([]byte("not a frame at all, just prose"))
	f.Add(bytes.Repeat([]byte{0}, 32))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Side 1: data is a WAL image found on disk after a crash.
		recs, cleanLen, err := DecodeAll(data)
		if cleanLen < 0 || cleanLen > len(data) {
			t.Fatalf("clean prefix %d outside [0,%d]", cleanLen, len(data))
		}
		switch {
		case err == nil:
			if cleanLen != len(data) {
				t.Fatalf("nil error but clean prefix %d != %d", cleanLen, len(data))
			}
		case errors.Is(err, ErrTornRecord), errors.Is(err, ErrCorruptRecord):
			// The two documented recovery outcomes.
		default:
			t.Fatalf("undocumented recovery error: %v", err)
		}
		again, againLen, err := DecodeAll(data[:cleanLen])
		if err != nil {
			t.Fatalf("clean prefix did not re-decode cleanly: %v", err)
		}
		if againLen != cleanLen || len(again) != len(recs) {
			t.Fatalf("re-decode drifted: %d bytes / %d records, want %d / %d",
				againLen, len(again), cleanLen, len(recs))
		}
		for i := range recs {
			if again[i].Seq != recs[i].Seq || !bytes.Equal(again[i].Data, recs[i].Data) {
				t.Fatalf("record %d changed on re-decode", i)
			}
		}

		// Side 2: data is a payload to log. Framing it and decoding the
		// frame must hand back the identical bytes, and garbage appended
		// after the frame (a torn next record) must leave it intact.
		framed, err := AppendRecord(nil, 42, data)
		if err != nil {
			t.Fatalf("append %d-byte record: %v", len(data), err)
		}
		rec, n, err := DecodeRecord(framed)
		if err != nil {
			t.Fatalf("decode framed record: %v", err)
		}
		if n != len(framed) || rec.Seq != 42 || !bytes.Equal(rec.Data, data) {
			t.Fatalf("round trip lost data: consumed %d/%d, seq %d", n, len(framed), rec.Seq)
		}
		torn := append(framed[:len(framed):len(framed)], 0x01, 0x00, 0x00)
		got, _, err := DecodeAll(torn)
		if len(got) != 1 || !bytes.Equal(got[0].Data, data) {
			t.Fatalf("torn tail damaged the preceding record (recovered %d records, err %v)", len(got), err)
		}
	})
}
