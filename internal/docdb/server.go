package docdb

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"pmove/internal/introspect"
	"pmove/internal/introspect/logbuf"
	"pmove/internal/resilience"
)

// request is the wire format of the Server protocol: one JSON object per
// line. Traceparent is the optional distributed-trace context tag —
// omitted by pre-tracing clients, ignored by pre-tracing servers (both
// directions stay backward compatible).
type request struct {
	Op          string  `json:"op"` // insert | insertb | find | get | delete | count | collections
	Collection  string  `json:"collection,omitempty"`
	Doc         Doc     `json:"doc,omitempty"`
	Docs        []Doc   `json:"docs,omitempty"` // insertb batch body
	Filter      *Filter `json:"filter,omitempty"`
	ID          string  `json:"id,omitempty"`
	Traceparent string  `json:"traceparent,omitempty"`
}

type response struct {
	OK    bool     `json:"ok"`
	Error string   `json:"error,omitempty"`
	ID    string   `json:"id,omitempty"`
	IDs   []string `json:"ids,omitempty"` // insertb assigned ids, batch order
	Docs  []Doc    `json:"docs,omitempty"`
	Count int      `json:"count,omitempty"`
	Names []string `json:"names,omitempty"`
}

// Server exposes a DB over TCP, one JSON request/response per line.
type Server struct {
	db *DB

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]bool
	wg    sync.WaitGroup
	obs   func(op string, err error)
	in    *introspect.Introspector
	log   *logbuf.Logger
	slow  time.Duration
}

// NewServer wraps a DB.
func NewServer(db *DB) *Server { return &Server{db: db, conns: map[net.Conn]bool{}} }

// SetObserver installs a per-op hook called after every dispatched
// request with the op name and its outcome — same shape as
// tsdb.Server.SetObserver, for the daemon's self-observability wiring.
func (s *Server) SetObserver(fn func(op string, err error)) {
	s.mu.Lock()
	s.obs = fn
	s.mu.Unlock()
}

// SetTracing attaches an introspector whose tracer records server-side
// spans (docdb.server.<op> with parse/queue/exec children). Requests
// carrying a traceparent field join the caller's distributed trace;
// untagged requests open local root spans. Nil disables server tracing.
func (s *Server) SetTracing(in *introspect.Introspector) {
	s.mu.Lock()
	s.in = in
	s.mu.Unlock()
}

func (s *Server) tracing() *introspect.Introspector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.in
}

func (s *Server) observe(op string, err error) {
	s.mu.Lock()
	fn := s.obs
	s.mu.Unlock()
	if fn != nil {
		fn(op, err)
	}
}

// SetLogger attaches a structured log ring (conventionally a
// "docdb.server" component child). Ops slower than slowThreshold emit a
// warn record carrying the request's wire traceparent; zero logs every
// op, negative disables the slow-op path (failed ops still log). Ping
// never logs. A nil logger disables everything.
func (s *Server) SetLogger(lg *logbuf.Logger, slowThreshold time.Duration) {
	s.mu.Lock()
	s.log = lg
	s.slow = slowThreshold
	s.mu.Unlock()
}

// logOp emits the per-op structured record: errors always, slow ops at
// the threshold. sctx carries the server span (the record's trace
// identity); the traceparent field is the raw wire tag.
func (s *Server) logOp(sctx context.Context, op, traceparent string, arrivalNanos int64, err error) {
	s.mu.Lock()
	lg, slow := s.log, s.slow
	s.mu.Unlock()
	if lg == nil || op == "ping" {
		return
	}
	elapsed := time.Duration(time.Now().UnixNano() - arrivalNanos)
	if err != nil {
		lg.Error(sctx, "op failed", "op", op, "duration", elapsed.String(), "error", err.Error())
		return
	}
	if slow < 0 || elapsed < slow {
		return
	}
	kv := []string{"op", op, "duration", elapsed.String()}
	if traceparent != "" {
		kv = append(kv, "traceparent", traceparent)
	}
	lg.Warn(sctx, "slow op", kv...)
}

// Listen starts serving and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("docdb: listen: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			s.conns[conn] = true
			s.mu.Unlock()
			s.wg.Add(1)
			go s.handle(conn)
		}
	}()
	return ln.Addr().String(), nil
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		arrival := time.Now().UnixNano()
		var req request
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			if encErr := enc.Encode(response{Error: err.Error()}); encErr != nil {
				return
			}
			continue
		}
		// The trace context rides inside the JSON we just decoded, so the
		// op and parse spans are backdated to frame arrival — decode time
		// is inside the trace even though the tag is read after it.
		ctx := context.Background()
		if remote, ok := introspect.ParseTraceparent(req.Traceparent); ok {
			ctx = introspect.ContextWithSpanContext(ctx, remote)
		}
		in := s.tracing()
		octx, op := in.StartSpanAt(ctx, "docdb.server."+strings.ToLower(req.Op), arrival)
		_, ps := in.StartSpanAt(octx, "docdb.server.parse", arrival)
		ps.End(nil)
		_, qs := in.StartSpan(octx, "docdb.server.queue")
		qs.End(nil)
		_, is := in.StartSpan(octx, "docdb.server.exec")
		resp := s.dispatch(&req)
		var derr error
		if resp.Error != "" {
			derr = errors.New(resp.Error)
		}
		is.End(derr)
		op.End(derr)
		s.logOp(octx, strings.ToLower(req.Op), req.Traceparent, arrival, derr)
		s.observe(strings.ToLower(req.Op), derr)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
	// Mirror tsdb: a scanner failure (line over the buffer cap) gets an
	// explicit error response instead of a silent hangup.
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			enc.Encode(response{Error: "line too long"})
		} else {
			enc.Encode(response{Error: err.Error()})
		}
	}
}

func (s *Server) dispatch(req *request) response {
	col := func() *Collection { return s.db.Collection(req.Collection) }
	switch strings.ToLower(req.Op) {
	case "insert":
		id, err := col().Insert(req.Doc)
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{OK: true, ID: id}
	case "insertb":
		// Batched insert: one frame, one response, ids in batch order.
		// Unlike tsdb's group commit this is per-doc under the hood (each
		// doc WAL-logged as its own op), so a mid-batch rejection leaves
		// the applied prefix — the response reports how far it got and
		// the op is at-least-once, not atomic, under retry.
		ids := make([]string, 0, len(req.Docs))
		for i, d := range req.Docs {
			id, err := col().Insert(d)
			if err != nil {
				return response{IDs: ids, Error: fmt.Sprintf("batch doc %d (%d applied): %v", i, len(ids), err)}
			}
			ids = append(ids, id)
		}
		return response{OK: true, IDs: ids}
	case "upsert":
		id, err := col().Upsert(req.Doc)
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{OK: true, ID: id}
	case "find":
		return response{OK: true, Docs: col().Find(req.Filter)}
	case "get":
		d, ok := col().Get(req.ID)
		if !ok {
			return response{Error: fmt.Sprintf("no document %q", req.ID)}
		}
		return response{OK: true, Docs: []Doc{d}}
	case "delete":
		return response{OK: true, Count: col().Delete(req.Filter)}
	case "count":
		return response{OK: true, Count: col().Count(req.Filter)}
	case "collections":
		return response{OK: true, Names: s.db.Collections()}
	case "ping":
		// Liveness probe used by the resilient client's circuit breaker.
		return response{OK: true}
	}
	return response{Error: fmt.Sprintf("unknown op %q", req.Op)}
}

// Close stops the server: listener and idle connections torn down,
// in-flight handlers drained (an accepted mutation finishes before the
// DB is considered final), then the DB's WAL flushed — a graceful
// shutdown never loses an acknowledged op, whatever the fsync policy.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
		s.ln = nil
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return s.db.Sync()
}

// Client talks to a Server through the shared resilient transport:
// per-op deadlines, retried reconnects with backoff, and a circuit
// breaker probed via the ping op. See tsdb.Client for the semantics —
// server-side rejections are never retried, I/O failures drop the wire so
// a half-read response cannot desynchronise later calls.
type Client struct {
	tr *resilience.Transport
}

// pingResync verifies a fresh connection answers a ping in sync.
func pingResync(w *resilience.Wire) error {
	if _, err := fmt.Fprintln(w.Conn, `{"op":"ping"}`); err != nil {
		return err
	}
	line, err := w.R.ReadBytes('\n')
	if err != nil {
		return err
	}
	var resp response
	if err := json.Unmarshal(line, &resp); err != nil {
		return fmt.Errorf("docdb: bad ping response: %w", err)
	}
	if !resp.OK {
		return fmt.Errorf("docdb: ping rejected: %s", resp.Error)
	}
	return nil
}

// Dial connects to a Server with the default resilience policy; the
// initial connect is a single attempt so a bad address fails fast.
func Dial(addr string) (*Client, error) {
	return DialPolicy(addr, resilience.DefaultPolicy())
}

// DialPolicy connects with an explicit resilience policy.
func DialPolicy(addr string, pol resilience.Policy) (*Client, error) {
	c := &Client{tr: resilience.NewTransport(addr, pol, pingResync)}
	if err := c.tr.Connect(); err != nil {
		c.tr.Close()
		return nil, fmt.Errorf("docdb: dial %s: %w", addr, err)
	}
	return c, nil
}

// Stats exposes the transport's fault counters.
func (c *Client) Stats() resilience.TransportStats { return c.tr.Stats() }

// Transport exposes the underlying resilient transport for
// self-observability wiring (Transport.SetIntrospection).
func (c *Client) Transport() *resilience.Transport { return c.tr }

// Ping checks liveness end to end with a background context.
func (c *Client) Ping() error {
	return c.PingContext(context.Background())
}

// PingContext checks liveness end to end.
func (c *Client) PingContext(ctx context.Context) error {
	_, err := c.roundTrip(ctx, request{Op: "ping"})
	return err
}

func (c *Client) roundTrip(ctx context.Context, req request) (response, error) {
	var resp response
	err := c.tr.DoContext(ctx, func(ctx context.Context, w *resilience.Wire) error {
		// Marshalled per attempt: the traceparent names the attempt span,
		// so a retried request parents its server spans under the retry
		// that actually carried it.
		req.Traceparent = introspect.TraceparentFromContext(ctx)
		b, err := json.Marshal(req)
		if err != nil {
			return resilience.Permanent(err)
		}
		if _, err := fmt.Fprintf(w.Conn, "%s\n", b); err != nil {
			return err
		}
		line, err := w.R.ReadBytes('\n')
		if err != nil {
			return err
		}
		resp = response{}
		if err := json.Unmarshal(line, &resp); err != nil {
			// Full line read — in sync; malformed bodies do not retry.
			return resilience.Permanent(fmt.Errorf("docdb: bad response: %w", err))
		}
		if resp.Error != "" {
			return resilience.Permanent(fmt.Errorf("docdb: %s", resp.Error))
		}
		return nil
	})
	return resp, err
}

// Insert stores a document remotely and returns its id.
func (c *Client) Insert(collection string, d Doc) (string, error) {
	return c.InsertContext(context.Background(), collection, d)
}

// InsertContext stores a document remotely and returns its id.
func (c *Client) InsertContext(ctx context.Context, collection string, d Doc) (string, error) {
	resp, err := c.roundTrip(ctx, request{Op: "insert", Collection: collection, Doc: d})
	return resp.ID, err
}

// InsertBatch stores a batch of documents with a background context.
//
// Deprecated: use InsertBatchContext.
func (c *Client) InsertBatch(collection string, docs []Doc) ([]string, error) {
	return c.InsertBatchContext(context.Background(), collection, docs)
}

// InsertBatchContext stores a batch of documents in ONE round-trip and
// returns their assigned ids in batch order. The op is at-least-once
// and non-atomic: a rejection mid-batch leaves the applied prefix
// (reported via the returned ids), and a retry after a lost ack may
// re-insert — callers needing exactly-once should write through the
// tsdb batch path or upsert by stable _id.
func (c *Client) InsertBatchContext(ctx context.Context, collection string, docs []Doc) ([]string, error) {
	if len(docs) == 0 {
		return nil, nil
	}
	resp, err := c.roundTrip(ctx, request{Op: "insertb", Collection: collection, Docs: docs})
	return resp.IDs, err
}

// Upsert inserts or replaces a document remotely by its _id.
func (c *Client) Upsert(collection string, d Doc) (string, error) {
	return c.UpsertContext(context.Background(), collection, d)
}

// UpsertContext inserts or replaces a document remotely by its _id.
func (c *Client) UpsertContext(ctx context.Context, collection string, d Doc) (string, error) {
	resp, err := c.roundTrip(ctx, request{Op: "upsert", Collection: collection, Doc: d})
	return resp.ID, err
}

// Find queries a collection remotely.
func (c *Client) Find(collection string, f *Filter) ([]Doc, error) {
	return c.FindContext(context.Background(), collection, f)
}

// FindContext queries a collection remotely.
func (c *Client) FindContext(ctx context.Context, collection string, f *Filter) ([]Doc, error) {
	resp, err := c.roundTrip(ctx, request{Op: "find", Collection: collection, Filter: f})
	return resp.Docs, err
}

// Get fetches one document by id.
func (c *Client) Get(collection, id string) (Doc, error) {
	return c.GetContext(context.Background(), collection, id)
}

// GetContext fetches one document by id.
func (c *Client) GetContext(ctx context.Context, collection, id string) (Doc, error) {
	resp, err := c.roundTrip(ctx, request{Op: "get", Collection: collection, ID: id})
	if err != nil {
		return nil, err
	}
	if len(resp.Docs) == 0 {
		return nil, fmt.Errorf("docdb: no document %q", id)
	}
	return resp.Docs[0], nil
}

// Count counts matching documents.
func (c *Client) Count(collection string, f *Filter) (int, error) {
	return c.CountContext(context.Background(), collection, f)
}

// CountContext counts matching documents.
func (c *Client) CountContext(ctx context.Context, collection string, f *Filter) (int, error) {
	resp, err := c.roundTrip(ctx, request{Op: "count", Collection: collection, Filter: f})
	return resp.Count, err
}

// Close closes the connection.
func (c *Client) Close() error { return c.tr.Close() }
