package docdb

import (
	"testing"
	"testing/quick"
)

func TestInsertGeneratesIDs(t *testing.T) {
	db := New()
	c := db.Collection("kb")
	id1, err := c.Insert(Doc{"host": "skx"})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := c.Insert(Doc{"host": "icl"})
	if err != nil {
		t.Fatal(err)
	}
	if id1 == "" || id1 == id2 {
		t.Fatalf("ids %q %q", id1, id2)
	}
	got, ok := c.Get(id1)
	if !ok || got["host"] != "skx" {
		t.Fatalf("get: %v %v", got, ok)
	}
}

func TestInsertExplicitIDAndDuplicates(t *testing.T) {
	db := New()
	c := db.Collection("kb")
	if _, err := c.Insert(Doc{"_id": "x", "v": 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(Doc{"_id": "x", "v": 2}); err == nil {
		t.Fatal("duplicate _id accepted")
	}
	if _, err := c.Insert(nil); err == nil {
		t.Fatal("nil doc accepted")
	}
}

func TestStoredDocsAreIsolated(t *testing.T) {
	db := New()
	c := db.Collection("kb")
	d := Doc{"_id": "a", "nested": map[string]any{"k": "v"}}
	if _, err := c.Insert(d); err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's doc must not affect the store.
	d["nested"].(map[string]any)["k"] = "mutated"
	got, _ := c.Get("a")
	if v, _ := got.Lookup("nested.k"); v != "v" {
		t.Errorf("store aliased caller memory: %v", v)
	}
	// Mutating a returned doc must not affect the store.
	got["nested"].(map[string]any)["k"] = "mutated2"
	got2, _ := c.Get("a")
	if v, _ := got2.Lookup("nested.k"); v != "v" {
		t.Errorf("reader aliased store memory: %v", v)
	}
}

func TestLookupPaths(t *testing.T) {
	d := Doc{
		"a": map[string]any{
			"b": []any{map[string]any{"c": 42.0}, "second"},
		},
	}
	if v, ok := d.Lookup("a.b.0.c"); !ok || v != 42.0 {
		t.Errorf("nested lookup = %v %v", v, ok)
	}
	if v, ok := d.Lookup("a.b.1"); !ok || v != "second" {
		t.Errorf("array lookup = %v %v", v, ok)
	}
	if _, ok := d.Lookup("a.b.9"); ok {
		t.Error("out-of-range index resolved")
	}
	if _, ok := d.Lookup("a.x"); ok {
		t.Error("missing key resolved")
	}
	if _, ok := d.Lookup("a.b.0.c.deeper"); ok {
		t.Error("descending into a scalar resolved")
	}
}

func TestFilters(t *testing.T) {
	db := New()
	c := db.Collection("entries")
	c.Insert(Doc{"_id": "1", "host": "skx", "kind": "ObservationInterface", "meta": map[string]any{"freq": 32}})
	c.Insert(Doc{"_id": "2", "host": "icl", "kind": "ObservationInterface"})
	c.Insert(Doc{"_id": "3", "host": "skx", "kind": "BenchmarkInterface"})

	if got := c.Find(&Filter{Eq: map[string]any{"host": "skx"}}); len(got) != 2 {
		t.Errorf("host filter: %d docs", len(got))
	}
	if got := c.Find(&Filter{Eq: map[string]any{"host": "skx", "kind": "BenchmarkInterface"}}); len(got) != 1 || got[0].ID() != "3" {
		t.Errorf("AND filter: %v", got)
	}
	// Numbers compare across int/float64 after JSON normalisation.
	if got := c.Find(&Filter{Eq: map[string]any{"meta.freq": 32}}); len(got) != 1 {
		t.Errorf("nested numeric filter: %d docs", len(got))
	}
	if got := c.Find(&Filter{Exists: []string{"meta"}}); len(got) != 1 {
		t.Errorf("exists filter: %d docs", len(got))
	}
	if got := c.Find(&Filter{Prefix: map[string]string{"kind": "Benchmark"}}); len(got) != 1 {
		t.Errorf("prefix filter: %d docs", len(got))
	}
	if got := c.Find(nil); len(got) != 3 {
		t.Errorf("nil filter: %d docs", len(got))
	}
	// Results are id-ordered.
	got := c.Find(nil)
	if got[0].ID() != "1" || got[2].ID() != "3" {
		t.Errorf("order: %v %v %v", got[0].ID(), got[1].ID(), got[2].ID())
	}
}

func TestFindOneAndCount(t *testing.T) {
	db := New()
	c := db.Collection("x")
	c.Insert(Doc{"_id": "b", "v": 1.0})
	c.Insert(Doc{"_id": "a", "v": 1.0})
	d, ok := c.FindOne(&Filter{Eq: map[string]any{"v": 1}})
	if !ok || d.ID() != "a" {
		t.Errorf("findOne = %v %v", d, ok)
	}
	if c.Count(nil) != 2 {
		t.Errorf("count = %d", c.Count(nil))
	}
	if _, ok := c.FindOne(&Filter{Eq: map[string]any{"v": 9}}); ok {
		t.Error("findOne matched nothing")
	}
}

func TestReplaceAndUpsert(t *testing.T) {
	db := New()
	c := db.Collection("x")
	if err := c.Replace("missing", Doc{"v": 1}); err == nil {
		t.Error("replace of missing doc accepted")
	}
	id, _ := c.Insert(Doc{"v": 1.0})
	if err := c.Replace(id, Doc{"v": 2.0}); err != nil {
		t.Fatal(err)
	}
	got, _ := c.Get(id)
	if got["v"] != 2.0 {
		t.Errorf("replace did not stick: %v", got)
	}
	// Upsert new and existing.
	uid, err := c.Upsert(Doc{"_id": "u1", "v": 1.0})
	if err != nil || uid != "u1" {
		t.Fatalf("upsert insert: %v %v", uid, err)
	}
	if _, err := c.Upsert(Doc{"_id": "u1", "v": 5.0}); err != nil {
		t.Fatal(err)
	}
	got, _ = c.Get("u1")
	if got["v"] != 5.0 {
		t.Errorf("upsert replace: %v", got)
	}
}

func TestSetField(t *testing.T) {
	db := New()
	c := db.Collection("x")
	id, _ := c.Insert(Doc{"v": 1.0})
	if err := c.SetField(id, "report.summary", "done"); err != nil {
		t.Fatal(err)
	}
	got, _ := c.Get(id)
	if v, _ := got.Lookup("report.summary"); v != "done" {
		t.Errorf("setfield: %v", v)
	}
	if err := c.SetField("missing", "a", 1); err == nil {
		t.Error("setfield on missing doc accepted")
	}
}

func TestDelete(t *testing.T) {
	db := New()
	c := db.Collection("x")
	c.Insert(Doc{"_id": "1", "host": "a"})
	c.Insert(Doc{"_id": "2", "host": "b"})
	if n := c.Delete(&Filter{Eq: map[string]any{"host": "a"}}); n != 1 {
		t.Errorf("deleted %d", n)
	}
	if c.Count(nil) != 1 {
		t.Error("delete removed the wrong docs")
	}
	if n := c.Delete(nil); n != 1 {
		t.Errorf("delete all removed %d", n)
	}
}

func TestCollectionsListing(t *testing.T) {
	db := New()
	db.Collection("b")
	db.Collection("a")
	db.Collection("a") // idempotent
	got := db.Collections()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("collections = %v", got)
	}
}

func TestFromValue(t *testing.T) {
	type payload struct {
		Host  string `json:"host"`
		Count int    `json:"count"`
	}
	d, err := FromValue(payload{Host: "skx", Count: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d["host"] != "skx" || d["count"] != 3.0 {
		t.Errorf("doc = %v", d)
	}
	if _, err := FromValue(make(chan int)); err == nil {
		t.Error("unencodable value accepted")
	}
}

func TestFilterNumericEqualityProperty(t *testing.T) {
	f := func(v int32) bool {
		d := Doc{"n": float64(v)}
		flt := &Filter{Eq: map[string]any{"n": int(v)}}
		return flt.Matches(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestServerClientEndToEnd(t *testing.T) {
	db := New()
	srv := NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id, err := c.Insert("kb", Doc{"host": "skx", "kind": "meta"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("kb", id)
	if err != nil {
		t.Fatal(err)
	}
	if got["host"] != "skx" {
		t.Errorf("remote get: %v", got)
	}
	docs, err := c.Find("kb", &Filter{Eq: map[string]any{"kind": "meta"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 {
		t.Errorf("remote find: %d docs", len(docs))
	}
	n, err := c.Count("kb", nil)
	if err != nil || n != 1 {
		t.Errorf("remote count: %d %v", n, err)
	}
	if _, err := c.Get("kb", "missing"); err == nil {
		t.Error("remote get of missing doc succeeded")
	}
}
