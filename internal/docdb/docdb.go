// Package docdb is the document-database substrate standing in for
// MongoDB 6: named collections of JSON documents with generated ids,
// nested-path query filters, updates and deletes. P-MoVE stores the
// Knowledge Base here "as JSON-LD extended with entries for each
// computation", with pointer fields linking to time-series data in the
// tsdb (paper §III-A).
package docdb

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"pmove/internal/storage"
)

// Doc is a JSON document. The stored form always carries an "_id" string.
type Doc map[string]any

// ID returns the document id, or "".
func (d Doc) ID() string {
	id, _ := d["_id"].(string)
	return id
}

// Clone deep-copies a document through JSON (documents are stored and
// returned by value so callers cannot alias the store).
func (d Doc) Clone() Doc {
	b, err := json.Marshal(d)
	if err != nil {
		// Documents are built from JSON-able values; a cycle is a caller
		// bug surfaced loudly.
		panic(fmt.Sprintf("docdb: unclonable document: %v", err))
	}
	var out Doc
	if err := json.Unmarshal(b, &out); err != nil {
		panic(fmt.Sprintf("docdb: unclonable document: %v", err))
	}
	return out
}

// Lookup resolves a dot path ("contents.0.name") inside the document.
func (d Doc) Lookup(path string) (any, bool) {
	var cur any = map[string]any(d)
	for _, part := range strings.Split(path, ".") {
		switch node := cur.(type) {
		case map[string]any:
			v, ok := node[part]
			if !ok {
				return nil, false
			}
			cur = v
		case Doc:
			v, ok := node[part]
			if !ok {
				return nil, false
			}
			cur = v
		case []any:
			idx, err := strconv.Atoi(part)
			if err != nil || idx < 0 || idx >= len(node) {
				return nil, false
			}
			cur = node[idx]
		default:
			return nil, false
		}
	}
	return cur, true
}

// Filter matches documents. All clauses must hold (AND semantics).
type Filter struct {
	// Eq maps dot paths to required values (compared after JSON
	// normalisation, so ints match float64s).
	Eq map[string]any
	// Exists lists dot paths that must be present.
	Exists []string
	// Prefix maps dot paths to required string prefixes (used for DTMI
	// subtree scans).
	Prefix map[string]string
}

// Matches reports whether the document satisfies the filter.
func (f *Filter) Matches(d Doc) bool {
	for path, want := range f.Eq {
		got, ok := d.Lookup(path)
		if !ok || !jsonEqual(got, want) {
			return false
		}
	}
	for _, path := range f.Exists {
		if _, ok := d.Lookup(path); !ok {
			return false
		}
	}
	for path, pre := range f.Prefix {
		got, ok := d.Lookup(path)
		if !ok {
			return false
		}
		s, ok := got.(string)
		if !ok || !strings.HasPrefix(s, pre) {
			return false
		}
	}
	return true
}

// jsonEqual compares two values modulo JSON number normalisation.
func jsonEqual(a, b any) bool {
	na, aok := toFloat(a)
	nb, bok := toFloat(b)
	if aok && bok {
		return na == nb
	}
	ab, err1 := json.Marshal(a)
	bb, err2 := json.Marshal(b)
	if err1 != nil || err2 != nil {
		return false
	}
	return string(ab) == string(bb)
}

func toFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case float32:
		return float64(n), true
	case int:
		return float64(n), true
	case int64:
		return float64(n), true
	case uint64:
		return float64(n), true
	case json.Number:
		f, err := n.Float64()
		return f, err == nil
	}
	return 0, false
}

// Collection is a set of documents.
type Collection struct {
	mu   sync.RWMutex
	name string
	docs map[string]Doc
	seq  uint64
	// db points back at the owning database so mutations reach its
	// write-ahead log; nil only in the zero value (never via DB).
	db *DB
}

// DB is a named set of collections: in-memory by default (New),
// optionally backed by a write-ahead log + snapshot data directory
// (Open) so acknowledged mutations survive a crash.
type DB struct {
	mu          sync.RWMutex
	collections map[string]*Collection
	// compactMu serializes mutations (read side) against Compact/Close/
	// Crash (write side), so a snapshot is a quiescent point: every WAL
	// record it claims to cover has committed to memory, and none past
	// it have. Lock order: compactMu, then Collection.mu, then DB.mu.
	compactMu sync.RWMutex
	// store is the durability layer; nil in the default in-memory mode.
	// closed marks a released durable DB: reads keep working, mutations
	// are refused rather than silently volatile.
	store  *storage.Store
	closed bool
}

// New creates an empty database.
func New() *DB {
	return &DB{collections: map[string]*Collection{}}
}

// Collection returns (creating if needed) a named collection.
func (db *DB) Collection(name string) *Collection {
	db.mu.Lock()
	defer db.mu.Unlock()
	c := db.collections[name]
	if c == nil {
		c = &Collection{name: name, docs: map[string]Doc{}, db: db}
		db.collections[name] = c
	}
	return c
}

// Collections lists collection names, sorted.
func (db *DB) Collections() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []string
	for n := range db.collections {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Insert stores a document, generating an _id when absent, and returns the
// id. Inserting an id that already exists errors. On a durable DB the
// fully resolved document (id assigned) is WAL-logged before the insert
// commits, so replay regenerates identical state including the id.
func (c *Collection) Insert(d Doc) (string, error) {
	if d == nil {
		return "", fmt.Errorf("docdb: cannot insert nil document into %s", c.name)
	}
	stored := d.Clone()
	defer c.beginMutation()()
	c.mu.Lock()
	defer c.mu.Unlock()
	id := stored.ID()
	if id == "" {
		c.seq++
		id = fmt.Sprintf("%s-%08d", c.name, c.seq)
		stored["_id"] = id
	}
	if _, exists := c.docs[id]; exists {
		return "", fmt.Errorf("docdb: duplicate _id %q in %s", id, c.name)
	}
	if err := c.logLocked(walOp{Op: "insert", Collection: c.name, Doc: stored, Seq: c.seq}); err != nil {
		return "", err
	}
	c.docs[id] = stored
	return id, nil
}

// Get fetches a document by id.
func (c *Collection) Get(id string) (Doc, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.docs[id]
	if !ok {
		return nil, false
	}
	return d.Clone(), true
}

// Find returns all documents matching the filter, ordered by _id. A nil
// filter matches everything.
func (c *Collection) Find(f *Filter) []Doc {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []Doc
	for _, d := range c.docs {
		if f == nil || f.Matches(d) {
			out = append(out, d.Clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// FindOne returns the first match in id order.
func (c *Collection) FindOne(f *Filter) (Doc, bool) {
	docs := c.Find(f)
	if len(docs) == 0 {
		return nil, false
	}
	return docs[0], true
}

// Count returns the number of matching documents.
func (c *Collection) Count(f *Filter) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	for _, d := range c.docs {
		if f == nil || f.Matches(d) {
			n++
		}
	}
	return n
}

// Replace overwrites the document with the given id. Errors if absent.
func (c *Collection) Replace(id string, d Doc) error {
	stored := d.Clone()
	stored["_id"] = id
	defer c.beginMutation()()
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.docs[id]; !ok {
		return fmt.Errorf("docdb: no document %q in %s", id, c.name)
	}
	if err := c.logLocked(walOp{Op: "replace", Collection: c.name, ID: id, Doc: stored}); err != nil {
		return err
	}
	c.docs[id] = stored
	return nil
}

// Upsert inserts or replaces by id; an empty id inserts fresh.
func (c *Collection) Upsert(d Doc) (string, error) {
	id := d.ID()
	if id == "" {
		return c.Insert(d)
	}
	c.mu.Lock()
	_, exists := c.docs[id]
	c.mu.Unlock()
	if exists {
		return id, c.Replace(id, d)
	}
	return c.Insert(d)
}

// SetField sets a top-level or nested field (dot path; intermediate maps
// are created) on the document with the given id.
func (c *Collection) SetField(id, path string, value any) error {
	defer c.beginMutation()()
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.docs[id]; !ok {
		return fmt.Errorf("docdb: no document %q in %s", id, c.name)
	}
	// Normalise the value through JSON so reads are consistent — and so
	// the WAL-logged form replays to the identical stored value.
	b, err := json.Marshal(value)
	if err != nil {
		return fmt.Errorf("docdb: unencodable value for %s: %w", path, err)
	}
	var norm any
	if err := json.Unmarshal(b, &norm); err != nil {
		return err
	}
	if err := c.logLocked(walOp{Op: "setfield", Collection: c.name, ID: id, Path: path, Value: norm}); err != nil {
		return err
	}
	c.setFieldLocked(id, path, norm)
	return nil
}

// setFieldLocked applies a normalised field write. Callers hold c.mu.
func (c *Collection) setFieldLocked(id, path string, norm any) {
	parts := strings.Split(path, ".")
	var cur map[string]any = c.docs[id]
	for _, p := range parts[:len(parts)-1] {
		next, ok := cur[p].(map[string]any)
		if !ok {
			next = map[string]any{}
			cur[p] = next
		}
		cur = next
	}
	cur[parts[len(parts)-1]] = norm
}

// Delete removes documents matching the filter, returning how many.
// Durable DBs log the filter, not the victims: replaying it against the
// identically reconstructed state deletes the same documents.
func (c *Collection) Delete(f *Filter) int {
	defer c.beginMutation()()
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.logLocked(walOp{Op: "delete", Collection: c.name, Filter: f}); err != nil {
		return 0
	}
	return c.deleteLocked(f)
}

// deleteLocked removes matching documents. Callers hold c.mu.
func (c *Collection) deleteLocked(f *Filter) int {
	n := 0
	for id, d := range c.docs {
		if f == nil || f.Matches(d) {
			delete(c.docs, id)
			n++
		}
	}
	return n
}

// FromJSON builds a Doc from raw JSON bytes.
func FromJSON(b []byte) (Doc, error) {
	var d Doc
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("docdb: bad document JSON: %w", err)
	}
	return d, nil
}

// FromValue converts any JSON-able Go value into a Doc.
func FromValue(v any) (Doc, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("docdb: unencodable value: %w", err)
	}
	return FromJSON(b)
}
