package docdb

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"sync"
	"testing"
	"time"
)

// fuzzSrv shares one live server across fuzz executions (each execution
// dials its own connection, so a mis-behaving input cannot poison the
// next one through shared connection state).
var fuzzSrv struct {
	once sync.Once
	addr string
	err  error
}

func fuzzServerAddr(tb testing.TB) string {
	fuzzSrv.once.Do(func() {
		srv := NewServer(New())
		fuzzSrv.addr, fuzzSrv.err = srv.Listen("127.0.0.1:0")
	})
	if fuzzSrv.err != nil {
		tb.Fatalf("fuzz server: %v", fuzzSrv.err)
	}
	return fuzzSrv.addr
}

// FuzzDocdbFrame throws arbitrary single-line frames at a live server
// over real TCP and asserts the wire contract: every frame — valid op,
// garbage JSON, binary junk — gets exactly one well-formed JSON response
// line, and the stream stays in sync (a follow-up ping on the same
// connection still pongs). A server that desyncs, hangs or answers twice
// fails here before a resilient client ever has to cope with it.
func FuzzDocdbFrame(f *testing.F) {
	f.Add([]byte(`{"op":"ping"}`))
	f.Add([]byte(`{"op":"insert","collection":"c","doc":{"_id":"x","n":1}}`))
	f.Add([]byte(`{"op":"find","collection":"c","filter":{"eq":{"n":1}}}`))
	f.Add([]byte(`{"op":"collections"}`))
	f.Add([]byte(`{"op":"get","collection":"c","id":"x"}`))
	f.Add([]byte(`{"op":"nope"}`))
	f.Add([]byte(`{"op":`))
	f.Add([]byte(`{"op":"ping","traceparent":"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"}`))
	f.Add([]byte(``))
	f.Add([]byte{0x00, 0xff, 0xfe})
	f.Fuzz(func(t *testing.T, data []byte) {
		// One line per frame; newlines would split into several frames and
		// break the one-response-per-frame accounting. Bounded well under
		// the server's scanner cap so "line too long" teardown (a
		// different, legal behavior) stays out of scope.
		data = bytes.ReplaceAll(data, []byte{'\n'}, []byte{' '})
		data = bytes.ReplaceAll(data, []byte{'\r'}, []byte{' '})
		if len(data) > 32<<10 {
			data = data[:32<<10]
		}
		conn, err := net.Dial("tcp", fuzzServerAddr(t))
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(10 * time.Second))
		r := bufio.NewReader(conn)

		if _, err := conn.Write(append(data, '\n')); err != nil {
			t.Fatalf("write frame: %v", err)
		}
		line, err := r.ReadBytes('\n')
		if err != nil {
			t.Fatalf("frame %q got no response: %v", data, err)
		}
		var resp map[string]any
		if err := json.Unmarshal(line, &resp); err != nil {
			t.Fatalf("frame %q got non-JSON response %q: %v", data, line, err)
		}

		// The stream must still be in sync: a ping on the same connection
		// gets a pong, not leftover bytes from the fuzzed frame.
		if _, err := conn.Write([]byte(`{"op":"ping"}` + "\n")); err != nil {
			t.Fatalf("write ping after frame %q: %v", data, err)
		}
		line, err = r.ReadBytes('\n')
		if err != nil {
			t.Fatalf("ping after frame %q got no response: %v", data, err)
		}
		var pong struct {
			OK    bool   `json:"ok"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(line, &pong); err != nil {
			t.Fatalf("ping after frame %q got non-JSON response %q: %v", data, line, err)
		}
		if !pong.OK || pong.Error != "" {
			t.Fatalf("stream desynced after frame %q: ping answered %q", data, line)
		}
	})
}
