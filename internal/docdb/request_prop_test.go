package docdb

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
)

// propRNG is a self-contained splitmix64 for seeded property cases.
type propRNG struct{ s uint64 }

func (r *propRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *propRNG) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *propRNG) str(prefix string) string {
	return fmt.Sprintf("%s%x", prefix, r.next()&0xffff)
}

// randDoc builds a document from JSON-stable value types (string,
// float64, bool, nested map) so unmarshalling reproduces it exactly.
func randDoc(r *propRNG, depth int) Doc {
	d := Doc{"_id": r.str("id-")}
	for i, n := 0, 1+r.intn(4); i < n; i++ {
		k := r.str("k")
		switch r.intn(4) {
		case 0:
			d[k] = r.str("v")
		case 1:
			d[k] = float64(r.next()%100000) / 100
		case 2:
			d[k] = r.next()&1 == 1
		case 3:
			if depth > 0 {
				d[k] = map[string]any(randDoc(r, depth-1))
			} else {
				d[k] = r.str("leaf")
			}
		}
	}
	return d
}

func randFilter(r *propRNG) *Filter {
	f := &Filter{Eq: map[string]any{}, Prefix: map[string]string{}}
	for i, n := 0, r.intn(3); i < n; i++ {
		f.Eq[r.str("path.")] = r.str("v")
	}
	for i, n := 0, r.intn(2); i < n; i++ {
		f.Exists = append(f.Exists, r.str("e"))
	}
	for i, n := 0, r.intn(2); i < n; i++ {
		f.Prefix[r.str("p")] = r.str("dtmi:")
	}
	return f
}

// TestRequestEncodeDecodeProperty drives 1000 seeded random wire
// requests through the JSON frame codec and back: the decoded request
// must equal the original — the invariant keeping client and server
// frame views identical no matter which optional parts a request
// carries.
func TestRequestEncodeDecodeProperty(t *testing.T) {
	ops := []string{"insert", "upsert", "find", "get", "delete", "count", "collections", "ping"}
	rng := &propRNG{s: 0xd0cdb}
	for i := 0; i < 1000; i++ {
		req := request{Op: ops[rng.intn(len(ops))]}
		if rng.intn(2) == 1 {
			req.Collection = rng.str("coll-")
		}
		switch req.Op {
		case "insert", "upsert":
			req.Doc = randDoc(rng, 2)
		case "find", "delete", "count":
			req.Filter = randFilter(rng)
		case "get":
			req.ID = rng.str("id-")
		}
		if rng.intn(4) == 0 {
			req.Traceparent = fmt.Sprintf("00-%016x%016x-%016x-01", rng.next(), rng.next(), rng.next()|1)
		}
		frame, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("case %d: marshal %+v: %v", i, req, err)
		}
		var got request
		if err := json.Unmarshal(frame, &got); err != nil {
			t.Fatalf("case %d: unmarshal %s: %v", i, frame, err)
		}
		if !reflect.DeepEqual(req, got) {
			t.Fatalf("case %d: round trip changed request:\n  in: %+v\n out: %+v\nwire: %s", i, req, got, frame)
		}
	}
}

// TestResponseEncodeDecodeProperty does the same for the server's side
// of the frame: 1000 seeded random responses must survive the codec
// exactly, including empty-but-present and fully-loaded shapes.
func TestResponseEncodeDecodeProperty(t *testing.T) {
	rng := &propRNG{s: 0x5e5f}
	for i := 0; i < 1000; i++ {
		resp := response{OK: rng.intn(2) == 1}
		if !resp.OK {
			resp.Error = rng.str("err-")
		}
		switch rng.intn(4) {
		case 0:
			resp.ID = rng.str("id-")
		case 1:
			for j, n := 0, 1+rng.intn(3); j < n; j++ {
				resp.Docs = append(resp.Docs, randDoc(rng, 1))
			}
		case 2:
			resp.Count = rng.intn(1000)
		case 3:
			for j, n := 0, 1+rng.intn(3); j < n; j++ {
				resp.Names = append(resp.Names, rng.str("coll-"))
			}
		}
		frame, err := json.Marshal(resp)
		if err != nil {
			t.Fatalf("case %d: marshal %+v: %v", i, resp, err)
		}
		var got response
		if err := json.Unmarshal(frame, &got); err != nil {
			t.Fatalf("case %d: unmarshal %s: %v", i, frame, err)
		}
		if !reflect.DeepEqual(resp, got) {
			t.Fatalf("case %d: round trip changed response:\n  in: %+v\n out: %+v\nwire: %s", i, resp, got, frame)
		}
	}
}
