package docdb

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"pmove/internal/resilience"
)

func testPolicy() resilience.Policy {
	return resilience.Policy{
		DialTimeout:  time.Second,
		ReadTimeout:  300 * time.Millisecond,
		WriteTimeout: 300 * time.Millisecond,
		MaxRetries:   3,
		Backoff:      resilience.Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond, Factor: 2, Jitter: 0.2},
		Breaker:      resilience.BreakerConfig{Threshold: 4, Cooldown: 40 * time.Millisecond},
		Seed:         5,
	}
}

func startServer(t *testing.T, db *DB) (*Server, string) {
	t.Helper()
	srv := NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return srv, addr
}

// TestServerLineTooLong mirrors the tsdb fix for the 16 MiB request cap.
func TestServerLineTooLong(t *testing.T) {
	srv, addr := startServer(t, New())
	defer srv.Close()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	w := bufio.NewWriterSize(conn, 1<<20)
	head := `{"op":"insert","doc":{"x":"`
	w.WriteString(head)
	w.WriteString(strings.Repeat("a", 16<<20-len(head)))
	if err := w.Flush(); err != nil {
		t.Fatalf("flush oversized request: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatalf("server hung up without answering: %v", err)
	}
	var resp response
	if err := json.Unmarshal([]byte(line), &resp); err != nil {
		t.Fatalf("bad error response %q: %v", line, err)
	}
	if resp.Error != "line too long" {
		t.Fatalf("got error %q, want %q", resp.Error, "line too long")
	}
}

// TestClientPing covers the new liveness op the breaker probes with.
func TestClientPing(t *testing.T) {
	srv, addr := startServer(t, New())
	defer srv.Close()
	c, err := DialPolicy(addr, testPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestClientRecoversAfterTimeout is docdb's desync regression: after a
// timed-out op, the next call must parse its own response.
func TestClientRecoversAfterTimeout(t *testing.T) {
	db := New()
	srv, addr := startServer(t, db)
	defer srv.Close()
	proxy := resilience.NewProxy(addr, resilience.Faults{}, 1)
	paddr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	pol := testPolicy()
	pol.MaxRetries = 0
	c, err := DialPolicy(paddr, pol)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Insert("col", Doc{"_id": "a", "v": 1.0}); err != nil {
		t.Fatal(err)
	}
	proxy.Partition()
	if _, err := c.Insert("col", Doc{"_id": "b", "v": 2.0}); err == nil {
		t.Fatal("partitioned insert should fail")
	}
	proxy.Heal()
	// The historical bug: this Count would read the stale insert response.
	n, err := c.Count("col", nil)
	if err != nil {
		t.Fatalf("count after failed insert: %v", err)
	}
	if n < 1 {
		t.Fatalf("count misparsed: got %d", n)
	}
	got, err := c.Get("col", "a")
	if err != nil || got["v"] != 1.0 {
		t.Fatalf("get after recovery: %v %v", got, err)
	}
}

// TestClientConcurrentRace hammers one shared client from many
// goroutines (run under -race).
func TestClientConcurrentRace(t *testing.T) {
	db := New()
	srv, addr := startServer(t, db)
	defer srv.Close()
	c, err := DialPolicy(addr, testPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const workers, ops = 8, 30
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				id := fmt.Sprintf("w%d-%d", wkr, i)
				switch i % 3 {
				case 0:
					if _, err := c.Upsert("race", Doc{"_id": id, "v": float64(i)}); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := c.Find("race", nil); err != nil {
						t.Error(err)
						return
					}
				default:
					if err := c.Ping(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(wkr)
	}
	wg.Wait()
	want := workers * ((ops + 2) / 3)
	if n := db.Collection("race").Count(nil); n != want {
		t.Fatalf("server holds %d docs, want %d", n, want)
	}
}

// TestClientSurvivesResets pushes upserts through a resetting link;
// retries must carry every op to completion.
func TestClientSurvivesResets(t *testing.T) {
	db := New()
	srv, addr := startServer(t, db)
	defer srv.Close()
	proxy := resilience.NewProxy(addr, resilience.Faults{ResetAfterBytes: 512}, 3)
	paddr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	pol := testPolicy()
	pol.MaxRetries = 5
	pol.Breaker.Threshold = 0
	c, err := DialPolicy(paddr, pol)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ok := 0
	for i := 0; i < 10; i++ {
		if _, err := c.Upsert("r", Doc{"_id": fmt.Sprintf("d%d", i), "v": float64(i)}); err == nil {
			ok++
		}
	}
	if ok < 8 {
		t.Fatalf("only %d/10 upserts survived resets", ok)
	}
	if n := db.Collection("r").Count(nil); n < ok {
		t.Fatalf("server holds %d docs, client acked %d", n, ok)
	}
}
