package docdb

import (
	"context"
	"strings"
	"testing"
)

// TestClientInsertBatch: the insertb op lands a whole batch in one
// round-trip, ids come back in batch order, and an invalid doc
// mid-batch reports the applied prefix (at-least-once, non-atomic —
// unlike the tsdb batch path).
func TestClientInsertBatch(t *testing.T) {
	db := New()
	srv, addr := startServer(t, db)
	defer srv.Close()
	c, err := DialPolicy(addr, testPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	docs := []Doc{
		{"name": "a"},
		{"name": "b"},
		{"name": "c"},
	}
	ids, err := c.InsertBatchContext(context.Background(), "jobs", docs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("got %d ids, want 3", len(ids))
	}
	seen := map[string]bool{}
	for i, id := range ids {
		if id == "" || seen[id] {
			t.Fatalf("id %d = %q: empty or duplicate", i, id)
		}
		seen[id] = true
	}
	if n := db.Collection("jobs").Count(nil); n != 3 {
		t.Fatalf("collection holds %d docs, want 3", n)
	}

	// Empty batch: no round-trip, no error.
	if ids, err := c.InsertBatchContext(context.Background(), "jobs", nil); err != nil || len(ids) != 0 {
		t.Fatalf("empty batch: ids=%v err=%v", ids, err)
	}

	// A rejected doc mid-batch: the error names the index and applied
	// count, the prefix stays (documented non-atomicity).
	bad := []Doc{
		{"_id": "dup", "name": "ok"},
		{"_id": "dup", "name": "rejected"}, // duplicate _id is rejected by Insert
		{"name": "never-reached"},
	}
	prefix, err := c.InsertBatchContext(context.Background(), "jobs", bad)
	if err == nil {
		t.Fatal("invalid doc accepted")
	}
	if !strings.Contains(err.Error(), "batch doc 1") || !strings.Contains(err.Error(), "1 applied") {
		t.Fatalf("error does not report index/applied: %v", err)
	}
	if len(prefix) != 1 {
		t.Fatalf("applied prefix ids = %v, want 1 id", prefix)
	}
	if n := db.Collection("jobs").Count(nil); n != 4 {
		t.Fatalf("collection holds %d docs, want 4 (3 + applied prefix of 1)", n)
	}

	// Deprecated wrapper agrees.
	if ids, err := c.InsertBatch("jobs", []Doc{{"name": "d"}}); err != nil || len(ids) != 1 {
		t.Fatalf("deprecated InsertBatch: ids=%v err=%v", ids, err)
	}
}
