package docdb

import (
	"encoding/json"
	"fmt"
	"sort"

	"pmove/internal/storage"
)

// Durability for the embedded docdb: Open binds a DB to a data
// directory managed by internal/storage. Every mutating op (insert,
// replace, setfield, delete — upsert decomposes into the first two) is
// WAL-logged as one JSON record before it commits, in its fully
// resolved form: inserts carry the assigned _id and the collection's id
// sequence, setfields the JSON-normalised value. Replaying
// snapshot+WAL therefore reconstructs byte-identical state, including
// the generator state future inserts draw ids from.

// walOp is one logged mutation. Seq is the collection's id-generation
// sequence after the op (inserts only), restored on replay so recovered
// stores never re-issue an id.
type walOp struct {
	Op         string  `json:"op"`
	Collection string  `json:"c"`
	Doc        Doc     `json:"doc,omitempty"`
	ID         string  `json:"id,omitempty"`
	Path       string  `json:"path,omitempty"`
	Value      any     `json:"value,omitempty"`
	Filter     *Filter `json:"filter,omitempty"`
	Seq        uint64  `json:"seq,omitempty"`
}

// snapshotImage is the compacted whole-database encoding.
type snapshotImage struct {
	Collections map[string]snapshotCollection `json:"collections"`
}

type snapshotCollection struct {
	Seq  uint64         `json:"seq"`
	Docs map[string]Doc `json:"docs"`
}

// beginMutation enters the mutation side of the compaction barrier and
// returns the release hook — called by every mutating Collection method
// BEFORE taking c.mu (lock order: compactMu, c.mu, DB.mu). While held,
// Compact/Close/Crash cannot run, so a WAL append and its in-memory
// commit are atomic with respect to snapshots.
func (c *Collection) beginMutation() func() {
	if c.db == nil {
		return func() {}
	}
	c.db.compactMu.RLock()
	return c.db.compactMu.RUnlock
}

// logLocked appends one mutation to the owning DB's WAL (no-op in
// memory). Callers hold c.mu; a failed append aborts the mutation so
// memory never runs ahead of what recovery can reconstruct.
func (c *Collection) logLocked(op walOp) error {
	if c.db == nil {
		return nil
	}
	c.db.mu.RLock()
	st, closed := c.db.store, c.db.closed
	c.db.mu.RUnlock()
	if closed {
		return fmt.Errorf("docdb: mutation on closed durable DB")
	}
	if st == nil {
		return nil
	}
	b, err := json.Marshal(op)
	if err != nil {
		return fmt.Errorf("docdb: encode wal op: %w", err)
	}
	if _, err := st.Append(b); err != nil {
		return fmt.Errorf("docdb: wal append: %w", err)
	}
	return nil
}

// Open opens (creating if needed) a durable DB at dir, replaying the
// snapshot then every WAL record newer than it. A torn final record
// (crash mid-append) is truncated by the storage layer; mid-file
// corruption errors rather than silently dropping acknowledged ops.
func Open(dir string, pol storage.FsyncPolicy) (*DB, error) {
	st, rec, err := storage.Open(dir, pol)
	if err != nil {
		return nil, err
	}
	db := New()
	if len(rec.Snapshot) > 0 {
		var img snapshotImage
		if err := json.Unmarshal(rec.Snapshot, &img); err != nil {
			st.Close()
			return nil, fmt.Errorf("docdb: decode snapshot %s: %w", dir, err)
		}
		for name, sc := range img.Collections {
			c := db.Collection(name)
			c.seq = sc.Seq
			for id, d := range sc.Docs {
				c.docs[id] = d
			}
		}
	}
	for _, r := range rec.Records {
		var op walOp
		if err := json.Unmarshal(r.Data, &op); err != nil {
			st.Close()
			return nil, fmt.Errorf("docdb: decode wal record %d in %s: %w", r.Seq, dir, err)
		}
		if err := db.applyOp(op); err != nil {
			st.Close()
			return nil, fmt.Errorf("docdb: replay record %d in %s: %w", r.Seq, dir, err)
		}
	}
	db.mu.Lock()
	db.store = st
	db.mu.Unlock()
	return db, nil
}

// applyOp replays one logged mutation without re-logging it.
func (db *DB) applyOp(op walOp) error {
	c := db.Collection(op.Collection)
	c.mu.Lock()
	defer c.mu.Unlock()
	switch op.Op {
	case "insert":
		id := op.Doc.ID()
		if id == "" {
			return fmt.Errorf("logged insert without _id")
		}
		if _, exists := c.docs[id]; exists {
			return fmt.Errorf("logged insert of duplicate _id %q", id)
		}
		c.docs[id] = op.Doc
		if op.Seq > c.seq {
			c.seq = op.Seq
		}
	case "replace":
		c.docs[op.ID] = op.Doc
	case "setfield":
		if _, ok := c.docs[op.ID]; !ok {
			return fmt.Errorf("logged setfield on missing _id %q", op.ID)
		}
		c.setFieldLocked(op.ID, op.Path, op.Value)
	case "delete":
		c.deleteLocked(op.Filter)
	default:
		return fmt.Errorf("unknown logged op %q", op.Op)
	}
	return nil
}

// Durable reports whether the DB is backed by a data directory.
func (db *DB) Durable() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.store != nil
}

// WALPath returns the write-ahead log path ("" for in-memory DBs).
func (db *DB) WALPath() string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.store == nil {
		return ""
	}
	return db.store.WALPath()
}

// Sync forces the WAL to stable storage. No-op in memory.
func (db *DB) Sync() error {
	db.mu.RLock()
	st := db.store
	db.mu.RUnlock()
	if st == nil {
		return nil
	}
	return st.Sync()
}

// Compact folds the current state into an atomic snapshot and resets
// the WAL. The compaction barrier keeps mutations out while the
// snapshot is cut, so it is a true quiescent point: every logged record
// is reflected in it, and recovery's overlap filter makes a crash
// anywhere inside Compact harmless. No-op in memory.
func (db *DB) Compact() error {
	db.compactMu.Lock()
	defer db.compactMu.Unlock()
	db.mu.RLock()
	st := db.store
	cols := make(map[string]*Collection, len(db.collections))
	for n, c := range db.collections {
		cols[n] = c
	}
	db.mu.RUnlock()
	if st == nil {
		return nil
	}
	img := snapshotImage{Collections: map[string]snapshotCollection{}}
	names := make([]string, 0, len(cols))
	for n := range cols {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		c := cols[n]
		c.mu.RLock()
		sc := snapshotCollection{Seq: c.seq, Docs: make(map[string]Doc, len(c.docs))}
		for id, d := range c.docs {
			sc.Docs[id] = d.Clone()
		}
		c.mu.RUnlock()
		img.Collections[n] = sc
	}
	b, err := json.Marshal(img)
	if err != nil {
		return fmt.Errorf("docdb: encode snapshot: %w", err)
	}
	return st.Compact(b)
}

// Close flushes and releases the data directory; reads keep working,
// further mutations are refused. No-op in memory.
func (db *DB) Close() error {
	db.compactMu.Lock()
	defer db.compactMu.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.store == nil {
		return nil
	}
	err := db.store.Close()
	db.store = nil
	db.closed = true
	return err
}

// Crash simulates dying without a flush: the WAL keeps only what the
// fsync policy already made stable. Test/simulation use only.
func (db *DB) Crash() error {
	db.compactMu.Lock()
	defer db.compactMu.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.store == nil {
		return nil
	}
	err := db.store.Crash()
	db.store = nil
	db.closed = true
	return err
}
