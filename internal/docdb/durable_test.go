package docdb

import (
	"fmt"
	"os"
	"reflect"
	"testing"

	"pmove/internal/storage"
)

// TestDurableOpsCrashRecover: the full mutating op set (insert with
// generated ids, upsert, replace, setfield, delete) replays from the
// WAL to identical state after a crash, including the id-generation
// sequence.
func TestDurableOpsCrashRecover(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, storage.FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	c := db.Collection("kb")
	id1, err := c.Insert(Doc{"name": "alpha", "n": 1})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := c.Insert(Doc{"name": "beta", "n": 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Upsert(Doc{"_id": id2, "name": "beta2", "n": 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetField(id1, "meta.depth", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(Doc{"name": "doomed", "kill": true}); err != nil {
		t.Fatal(err)
	}
	if n := c.Delete(&Filter{Eq: map[string]any{"kill": true}}); n != 1 {
		t.Fatalf("deleted %d, want 1", n)
	}
	want := c.Find(nil)
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, storage.FsyncAlways)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	rc := re.Collection("kb")
	got := rc.Find(nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered state differs:\n got %v\nwant %v", got, want)
	}
	// The id generator resumed past the recovered sequence: a fresh
	// insert must not collide with any recovered id.
	id3, err := rc.Insert(Doc{"name": "gamma"})
	if err != nil {
		t.Fatalf("post-recovery insert: %v", err)
	}
	if id3 == id1 || id3 == id2 {
		t.Fatalf("recovered id generator re-issued %q", id3)
	}
}

// TestDurableCompactThenRecover: compaction preserves contents and the
// id sequence; post-compaction ops land in the fresh WAL.
func TestDurableCompactThenRecover(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, storage.FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	c := db.Collection("col")
	for i := 0; i < 5; i++ {
		if _, err := c.Insert(Doc{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if _, err := c.Insert(Doc{"i": 5}); err != nil {
		t.Fatal(err)
	}
	want := c.Find(nil)
	db.Close()

	re, err := Open(dir, storage.FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := re.Collection("col").Find(nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-compact recovery differs:\n got %v\nwant %v", got, want)
	}
	if n := len(got); n != 6 {
		t.Fatalf("recovered %d docs, want 6", n)
	}
}

// TestDurableTornTailRecovers: a torn final WAL record recovers to the
// clean prefix without error.
func TestDurableTornTailRecovers(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, storage.FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	c := db.Collection("col")
	for i := 0; i < 4; i++ {
		if _, err := c.Insert(Doc{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	walPath := db.WALPath()
	db.Close()
	torn, err := storage.AppendRecord(nil, 99, []byte(`{"op":"insert","c":"col","doc":{"_id":"torn"}}`))
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)-5]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	re, err := Open(dir, storage.FsyncAlways)
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	defer re.Close()
	if n := re.Collection("col").Count(nil); n != 4 {
		t.Fatalf("recovered %d docs, want the 4-doc clean prefix", n)
	}
}

// TestClosedDurableDBRefusesMutations: reads survive Close, mutations
// are refused instead of going silently volatile.
func TestClosedDurableDBRefusesMutations(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, storage.FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	c := db.Collection("col")
	if _, err := c.Insert(Doc{"keep": true}); err != nil {
		t.Fatal(err)
	}
	db.Close()
	if _, err := c.Insert(Doc{"lost": true}); err == nil {
		t.Fatal("closed durable DB accepted an insert")
	}
	if err := c.SetField("nope", "a", 1); err == nil {
		t.Fatal("closed durable DB accepted a setfield")
	}
	if n := c.Count(nil); n != 1 {
		t.Fatalf("closed DB unreadable or mutated: %d docs", n)
	}
}

// TestServerFlushOnClose: a wire-acknowledged insert survives server
// Close + crash even under fsync=never, because Close drains handlers
// and syncs before returning.
func TestServerFlushOnClose(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, storage.FsyncNever)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 8; i++ {
		id, err := cli.Insert("acked", Doc{"i": i})
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	cli.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("server Close: %v", err)
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, storage.FsyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for _, id := range ids {
		if _, ok := re.Collection("acked").Get(id); !ok {
			t.Fatalf("graceful shutdown lost acknowledged doc %q", id)
		}
	}
}

// TestDurableRecoveryDeterministic: recovery is a pure function of the
// directory contents.
func TestDurableRecoveryDeterministic(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, storage.FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	c := db.Collection("col")
	for i := 0; i < 6; i++ {
		if _, err := c.Insert(Doc{"i": i, "tag": fmt.Sprintf("t%d", i%2)}); err != nil {
			t.Fatal(err)
		}
	}
	c.Delete(&Filter{Eq: map[string]any{"tag": "t1"}})
	db.Close()
	render := func() string {
		r, err := Open(dir, storage.FsyncAlways)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		return fmt.Sprintf("%v", r.Collection("col").Find(nil))
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("recovery not deterministic:\n%s\nvs\n%s", a, b)
	}
}
