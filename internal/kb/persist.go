package kb

import (
	"encoding/json"
	"fmt"
	"sort"

	"pmove/internal/docdb"
	"pmove/internal/ontology"
)

// Collection names used in the document database.
const (
	CollInterfaces = "kb_interfaces"
	CollEntries    = "kb_entries"
	CollMeta       = "kb_meta"
)

// Persist writes the whole KB into the document database (Figure 3 step
// ③: "Once the KB is generated, it is inserted into MongoDB … Step ③
// re-occurs every time KB changes"). Existing documents for the same host
// are replaced, making Persist idempotent.
func (k *KB) Persist(db *docdb.DB) error {
	ifaces := db.Collection(CollInterfaces)
	entries := db.Collection(CollEntries)
	meta := db.Collection(CollMeta)

	// Drop prior state for this host.
	hostFilter := &docdb.Filter{Eq: map[string]any{"host": k.Host}}
	ifaces.Delete(hostFilter)
	entries.Delete(hostFilter)
	meta.Delete(hostFilter)

	for _, n := range k.Nodes() {
		doc, err := toDoc(n.Interface)
		if err != nil {
			return fmt.Errorf("kb: persist %s: %w", n.ID, err)
		}
		doc["_id"] = n.ID
		doc["host"] = k.Host
		doc["kind"] = string(n.Kind)
		doc["parent"] = n.Parent
		if _, err := ifaces.Insert(doc); err != nil {
			return err
		}
	}
	for _, e := range k.Entries {
		doc, err := toDoc(e)
		if err != nil {
			return fmt.Errorf("kb: persist entry %s: %w", e.EntryID(), err)
		}
		doc["_id"] = e.EntryID()
		doc["host"] = k.Host
		doc["kind"] = string(e.Kind())
		if _, err := entries.Insert(doc); err != nil {
			return err
		}
	}
	metaDoc, err := toDoc(map[string]any{
		"_id":    "meta:" + k.Host,
		"host":   k.Host,
		"root":   k.root,
		"config": k.Config,
		"nodes":  k.Len(),
	})
	if err != nil {
		return err
	}
	_, err = meta.Insert(metaDoc)
	return err
}

// Load reconstructs a KB for a host from the document database.
func Load(db *docdb.DB, host string) (*KB, error) {
	meta := db.Collection(CollMeta)
	md, ok := meta.Get("meta:" + host)
	if !ok {
		return nil, fmt.Errorf("kb: no persisted KB for host %q", host)
	}
	root, _ := md["root"].(string)
	k := &KB{Host: host, nodes: map[string]*Node{}, root: root}
	if cfgRaw, ok := md["config"]; ok {
		b, _ := json.Marshal(cfgRaw)
		if err := json.Unmarshal(b, &k.Config); err != nil {
			return nil, fmt.Errorf("kb: load config: %w", err)
		}
	}

	hostFilter := &docdb.Filter{Eq: map[string]any{"host": host}}
	for _, doc := range db.Collection(CollInterfaces).Find(hostFilter) {
		b, err := json.Marshal(doc)
		if err != nil {
			return nil, err
		}
		iface, err := ontology.ParseInterface(b)
		if err != nil {
			return nil, fmt.Errorf("kb: load %s: %w", doc.ID(), err)
		}
		kind, _ := doc["kind"].(string)
		parent, _ := doc["parent"].(string)
		ordinal := 0
		if v, ok := iface.Property("__ordinal").(float64); ok {
			ordinal = int(v)
		}
		k.nodes[iface.ID] = &Node{
			ID: iface.ID, Kind: ontology.ComponentKind(kind), Ordinal: ordinal,
			Interface: iface, Parent: parent,
		}
	}
	// Rebuild children lists from parents.
	for _, n := range k.nodes {
		if n.Parent != "" {
			if p, ok := k.nodes[n.Parent]; ok {
				p.Children = append(p.Children, n.ID)
			}
		}
	}
	for _, n := range k.nodes {
		sort.Strings(n.Children)
	}
	for _, doc := range db.Collection(CollEntries).Find(hostFilter) {
		e, err := entryFromDoc(doc)
		if err != nil {
			return nil, err
		}
		k.Entries = append(k.Entries, e)
	}
	if err := k.Validate(); err != nil {
		return nil, fmt.Errorf("kb: loaded KB invalid: %w", err)
	}
	return k, nil
}

// entryFromDoc reconstructs a typed entry from its stored document.
func entryFromDoc(doc docdb.Doc) (Entry, error) {
	kind, _ := doc["kind"].(string)
	b, err := json.Marshal(doc)
	if err != nil {
		return nil, err
	}
	switch ontology.EntryKind(kind) {
	case ontology.EntryObservation, ontology.EntryTSObservation, ontology.EntryAGGObservation:
		var o Observation
		if err := json.Unmarshal(b, &o); err != nil {
			return nil, err
		}
		return &o, nil
	case ontology.EntryBenchmark:
		var bm Benchmark
		if err := json.Unmarshal(b, &bm); err != nil {
			return nil, err
		}
		return &bm, nil
	case ontology.EntryProcess:
		var p Process
		if err := json.Unmarshal(b, &p); err != nil {
			return nil, err
		}
		return &p, nil
	}
	return nil, fmt.Errorf("kb: unknown entry kind %q in document %s", kind, doc.ID())
}

// toDoc converts any JSON-able value to a docdb document.
func toDoc(v any) (docdb.Doc, error) {
	return docdb.FromValue(v)
}
