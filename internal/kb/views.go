package kb

import (
	"fmt"
	"sort"

	"pmove/internal/ontology"
)

// ViewKind names the three dashboard views of §III-B.
type ViewKind string

// The three views.
const (
	ViewFocus   ViewKind = "focus"   // single component + path to root
	ViewSubtree ViewKind = "subtree" // component and all descendants
	ViewLevel   ViewKind = "level"   // all components of one type
)

// View is a selection of KB nodes with the metadata a dashboard generator
// needs.
type View struct {
	Kind  ViewKind
	Title string
	// Nodes in display order. For the focus view the first node is the
	// component itself followed by the path to the root; for the subtree
	// view a pre-order walk; for the level view ordinal order.
	Nodes []*Node
}

// FocusView returns the component itself plus the path from it to the root
// — "the path navigating from a component perspective to a more
// generalized system perspective is analyzed, aiding in tracing and
// isolating performance issues".
func (k *KB) FocusView(id string) (*View, error) {
	n, ok := k.nodes[id]
	if !ok {
		return nil, fmt.Errorf("kb: focus view: no component %s", id)
	}
	v := &View{Kind: ViewFocus, Title: fmt.Sprintf("focus: %s", n.Interface.DisplayName)}
	for cur := n; cur != nil; {
		v.Nodes = append(v.Nodes, cur)
		if cur.Parent == "" {
			break
		}
		cur = k.nodes[cur.Parent]
	}
	return v, nil
}

// SubtreeView returns a pre-order walk of the component and everything it
// contains — "zooms into performance events, starting from an arbitrary
// node and extending to all connected leaf nodes".
func (k *KB) SubtreeView(id string) (*View, error) {
	n, ok := k.nodes[id]
	if !ok {
		return nil, fmt.Errorf("kb: subtree view: no component %s", id)
	}
	v := &View{Kind: ViewSubtree, Title: fmt.Sprintf("subtree: %s", n.Interface.DisplayName)}
	var walk func(*Node)
	walk = func(cur *Node) {
		v.Nodes = append(v.Nodes, cur)
		children := append([]string(nil), cur.Children...)
		sort.Strings(children)
		for _, c := range children {
			walk(k.nodes[c])
		}
	}
	walk(n)
	return v, nil
}

// LevelView returns every component of one kind — "visualizes multiple
// instances of the same type, such as a group of threads, disks and
// processes … corresponds to a level in the KB tree".
func (k *KB) LevelView(kind ontology.ComponentKind) (*View, error) {
	if !ontology.ValidKind(kind) {
		return nil, fmt.Errorf("kb: level view: unknown kind %q", kind)
	}
	nodes := k.NodesOfKind(kind)
	if len(nodes) == 0 {
		return nil, fmt.Errorf("kb: level view: no components of kind %s", kind)
	}
	return &View{
		Kind:  ViewLevel,
		Title: fmt.Sprintf("level: %s (%d instances)", kind, len(nodes)),
		Nodes: nodes,
	}, nil
}

// CrossLevelView merges the level views of several KBs — the linked-data
// capability that lets Fig 2(d) compare processes "on different servers
// (skx, icl)" in one dashboard.
func CrossLevelView(kind ontology.ComponentKind, kbs ...*KB) (*View, error) {
	v := &View{Kind: ViewLevel, Title: fmt.Sprintf("level: %s across %d systems", kind, len(kbs))}
	for _, k := range kbs {
		lv, err := k.LevelView(kind)
		if err != nil {
			return nil, fmt.Errorf("kb: cross-level on %s: %w", k.Host, err)
		}
		v.Nodes = append(v.Nodes, lv.Nodes...)
	}
	return v, nil
}

// Depth returns a node's distance from the root.
func (k *KB) Depth(id string) (int, error) {
	n, ok := k.nodes[id]
	if !ok {
		return 0, fmt.Errorf("kb: no component %s", id)
	}
	d := 0
	for n.Parent != "" {
		n = k.nodes[n.Parent]
		d++
	}
	return d, nil
}
