package kb

import (
	"strings"
	"testing"

	"pmove/internal/docdb"
	"pmove/internal/ontology"
	"pmove/internal/pmu"
	"pmove/internal/topo"
)

func testKB(t *testing.T, preset string) *KB {
	t.Helper()
	sys := topo.MustPreset(preset)
	p := topo.NewProber()
	p.EventLister = func(arch string) []string {
		cat, err := pmu.CatalogFor(arch)
		if err != nil {
			return nil
		}
		return cat.Names()
	}
	doc, err := p.Probe(sys)
	if err != nil {
		t.Fatal(err)
	}
	k, err := Generate(doc, Config{InfluxAddr: "i:8086", MongoAddr: "m:27017", GrafanaToken: "tok"})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestGenerateStructure(t *testing.T) {
	k := testKB(t, topo.PresetICL) // 1 socket, 8 cores, 16 threads
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	if k.Root().Kind != ontology.KindSystem {
		t.Error("root should be the system twin")
	}
	counts := map[ontology.ComponentKind]int{}
	for _, n := range k.Nodes() {
		counts[n.Kind]++
	}
	want := map[ontology.ComponentKind]int{
		ontology.KindSystem: 1,
		ontology.KindSocket: 1,
		ontology.KindCore:   8,
		ontology.KindThread: 16,
		ontology.KindNUMA:   1,
		ontology.KindMemory: 1,
		ontology.KindDisk:   1,
		ontology.KindNIC:    1,
	}
	for kind, n := range want {
		if counts[kind] != n {
			t.Errorf("%s: %d nodes, want %d", kind, counts[kind], n)
		}
	}
	// Per-core L1+L2 plus one shared L3.
	if counts[ontology.KindCache] != 8*2+1 {
		t.Errorf("caches: %d, want 17", counts[ontology.KindCache])
	}
}

func TestGenerateGPU(t *testing.T) {
	sys := topo.WithGPU(topo.MustPreset(topo.PresetICL))
	p := topo.NewProber()
	doc, err := p.Probe(sys)
	if err != nil {
		t.Fatal(err)
	}
	k, err := Generate(doc, Config{})
	if err != nil {
		t.Fatal(err)
	}
	gpus := k.NodesOfKind(ontology.KindGPU)
	if len(gpus) != 1 {
		t.Fatalf("gpus: %d", len(gpus))
	}
	g := gpus[0].Interface
	if g.Property("model") != "NVIDIA Quadro GV100" {
		t.Error("GPU model property missing")
	}
	// The ncu HWTelemetry of Listing 4.
	hw := g.Telemetries(ontology.ClassHWTelemetry)
	if len(hw) != 1 || hw[0].PMUName != "ncu" {
		t.Errorf("GPU HW telemetry: %+v", hw)
	}
	if hw[0].DBName != "ncu_gpu__compute_memory_access_throughput" {
		t.Errorf("GPU DBName: %q", hw[0].DBName)
	}
}

func TestThreadTelemetryEncodesFields(t *testing.T) {
	k := testKB(t, topo.PresetICL)
	threads := k.NodesOfKind(ontology.KindThread)
	th := threads[3] // cpu3
	sw := th.Interface.Telemetries(ontology.ClassSWTelemetry)
	found := false
	for _, tel := range sw {
		if tel.SamplerName == "kernel.percpu.cpu.idle" {
			found = true
			if tel.FieldName != "_cpu3" {
				t.Errorf("field = %q, want _cpu3", tel.FieldName)
			}
			if tel.DBName != "kernel_percpu_cpu_idle" {
				t.Errorf("dbname = %q", tel.DBName)
			}
		}
	}
	if !found {
		t.Error("thread missing cpu.idle telemetry")
	}
	hw := th.Interface.Telemetries(ontology.ClassHWTelemetry)
	if len(hw) == 0 {
		t.Error("thread has no HW telemetry from the PMU inventory")
	}
	for _, tel := range hw {
		if strings.HasPrefix(tel.SamplerName, "RAPL") {
			t.Error("package-scope RAPL events must not attach to threads")
		}
	}
}

func TestSocketCarriesRAPL(t *testing.T) {
	k := testKB(t, topo.PresetSKX)
	socks := k.NodesOfKind(ontology.KindSocket)
	if len(socks) != 2 {
		t.Fatalf("sockets: %d", len(socks))
	}
	hw := socks[0].Interface.Telemetries(ontology.ClassHWTelemetry)
	if len(hw) != 1 || hw[0].SamplerName != pmu.RAPLEnergyPkg {
		t.Errorf("socket HW telemetry: %+v", hw)
	}
}

func TestViews(t *testing.T) {
	k := testKB(t, topo.PresetICL)
	threads := k.NodesOfKind(ontology.KindThread)

	// Focus: component + path to root.
	fv, err := k.FocusView(threads[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	// thread -> core -> socket -> system.
	if len(fv.Nodes) != 4 {
		t.Errorf("focus path length %d, want 4", len(fv.Nodes))
	}
	if fv.Nodes[0].Kind != ontology.KindThread || fv.Nodes[len(fv.Nodes)-1].Kind != ontology.KindSystem {
		t.Error("focus path should go component -> root")
	}

	// Subtree of a core: core + caches + threads.
	cores := k.NodesOfKind(ontology.KindCore)
	sv, err := k.SubtreeView(cores[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(sv.Nodes) != 1+2+2 { // core + L1 + L2 + 2 threads
		t.Errorf("core subtree size %d, want 5", len(sv.Nodes))
	}
	if sv.Nodes[0].ID != cores[0].ID {
		t.Error("subtree should start at its root (pre-order)")
	}

	// Subtree of the system covers everything.
	all, err := k.SubtreeView(k.Root().ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Nodes) != k.Len() {
		t.Errorf("system subtree %d nodes, want %d", len(all.Nodes), k.Len())
	}

	// Level view.
	lv, err := k.LevelView(ontology.KindThread)
	if err != nil {
		t.Fatal(err)
	}
	if len(lv.Nodes) != 16 {
		t.Errorf("thread level view: %d", len(lv.Nodes))
	}
	for i := 1; i < len(lv.Nodes); i++ {
		if lv.Nodes[i].Ordinal < lv.Nodes[i-1].Ordinal {
			t.Error("level view not ordinal-ordered")
		}
	}
	if _, err := k.LevelView(ontology.KindGPU); err == nil {
		t.Error("level view of an absent kind should error")
	}
	if _, err := k.FocusView("dtmi:dt:none:x0;1"); err == nil {
		t.Error("focus view of unknown component should error")
	}
}

func TestCrossLevelView(t *testing.T) {
	a := testKB(t, topo.PresetSKX)
	b := testKB(t, topo.PresetICL)
	v, err := CrossLevelView(ontology.KindSocket, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Nodes) != 3 { // 2 skx + 1 icl
		t.Errorf("cross view: %d nodes", len(v.Nodes))
	}
}

func TestDepth(t *testing.T) {
	k := testKB(t, topo.PresetICL)
	if d, _ := k.Depth(k.Root().ID); d != 0 {
		t.Errorf("root depth %d", d)
	}
	th := k.NodesOfKind(ontology.KindThread)[0]
	if d, _ := k.Depth(th.ID); d != 3 {
		t.Errorf("thread depth %d, want 3", d)
	}
}

func TestObservationQueriesListing3Shape(t *testing.T) {
	o := &Observation{
		ID: "obs:t", Type: "ObservationInterface",
		Tag:  "278e26c2-3fd3-45e4-862b-5646dc9e7aa0",
		Host: "skx",
		Metrics: []MetricRef{
			{Measurement: "kernel_percpu_cpu_idle", Fields: []string{"_cpu0", "_cpu1", "_cpu22", "_cpu23"}},
			{Measurement: "mem_numa_alloc_hit", Fields: []string{"_node0", "_node1"}},
		},
	}
	qs := o.Queries()
	if len(qs) != 2 {
		t.Fatalf("queries: %v", qs)
	}
	want := `SELECT "_cpu0", "_cpu1", "_cpu22", "_cpu23" FROM "kernel_percpu_cpu_idle" WHERE tag="278e26c2-3fd3-45e4-862b-5646dc9e7aa0"`
	if qs[0] != want {
		t.Errorf("query mismatch:\n got %s\nwant %s", qs[0], want)
	}
}

func TestAttachAndLookupEntries(t *testing.T) {
	k := testKB(t, topo.PresetICL)
	obs := &Observation{ID: "obs:1", Type: "ObservationInterface", Tag: "t1", Host: k.Host}
	if err := k.Attach(obs); err != nil {
		t.Fatal(err)
	}
	if err := k.Attach(obs); err == nil {
		t.Error("duplicate entry accepted")
	}
	if err := k.Attach(&Observation{}); err == nil {
		t.Error("entry without id accepted")
	}
	bench := &Benchmark{ID: "bench:1", Type: "BenchmarkInterface", Host: k.Host, Name: "carm",
		Results: []BenchmarkResult{{Metric: "peak_flops", Value: 100, Unit: "GFLOP/s",
			Params: map[string]string{"isa": "avx512"}}}}
	if err := k.Attach(bench); err != nil {
		t.Fatal(err)
	}
	if got, ok := k.FindObservation("t1"); !ok || got.ID != "obs:1" {
		t.Error("FindObservation failed")
	}
	if _, ok := k.FindObservation("nope"); ok {
		t.Error("found a ghost observation")
	}
	if bs := k.Benchmarks("carm"); len(bs) != 1 {
		t.Errorf("benchmarks: %d", len(bs))
	}
	if bs := k.Benchmarks("stream"); len(bs) != 0 {
		t.Errorf("stream benchmarks: %d", len(bs))
	}
	if r, ok := bench.Result("peak_flops", map[string]string{"isa": "avx512"}); !ok || r.Value != 100 {
		t.Error("benchmark result lookup failed")
	}
	if _, ok := bench.Result("peak_flops", map[string]string{"isa": "sse"}); ok {
		t.Error("param mismatch matched")
	}
}

func TestPersistLoadRoundTrip(t *testing.T) {
	k := testKB(t, topo.PresetICL)
	obs := &Observation{ID: "obs:1", Type: "ObservationInterface", Tag: "t1", Host: k.Host,
		Command: "spmv", Affinity: []int{0, 1}, FreqHz: 32,
		Metrics: []MetricRef{{Measurement: "m", Fields: []string{"_cpu0"}}}}
	if err := k.Attach(obs); err != nil {
		t.Fatal(err)
	}
	db := docdb.New()
	if err := k.Persist(db); err != nil {
		t.Fatal(err)
	}
	got, err := Load(db, k.Host)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != k.Len() {
		t.Errorf("loaded %d nodes, want %d", got.Len(), k.Len())
	}
	if got.Root().ID != k.Root().ID {
		t.Error("root lost")
	}
	if got.Config.GrafanaToken != "tok" {
		t.Error("config lost")
	}
	obs2 := got.Observations()
	if len(obs2) != 1 || obs2[0].Tag != "t1" || obs2[0].FreqHz != 32 {
		t.Errorf("entries lost: %+v", obs2)
	}
	// Views still work on the loaded KB.
	if _, err := got.SubtreeView(got.Root().ID); err != nil {
		t.Fatal(err)
	}
}

func TestPersistIsIdempotent(t *testing.T) {
	k := testKB(t, topo.PresetICL)
	db := docdb.New()
	if err := k.Persist(db); err != nil {
		t.Fatal(err)
	}
	n1 := db.Collection(CollInterfaces).Count(nil)
	if err := k.Persist(db); err != nil {
		t.Fatal(err)
	}
	n2 := db.Collection(CollInterfaces).Count(nil)
	if n1 != n2 {
		t.Errorf("persist not idempotent: %d then %d interface docs", n1, n2)
	}
}

func TestLoadMissingHost(t *testing.T) {
	if _, err := Load(docdb.New(), "ghost"); err == nil {
		t.Fatal("expected error")
	}
}

func TestTripleStoreLinks(t *testing.T) {
	k := testKB(t, topo.PresetICL)
	st, err := k.TripleStore()
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() == 0 {
		t.Fatal("empty triple store")
	}
	// Every thread twin must be reachable from the system twin by
	// following links (the linked-data navigation of §III).
	for _, th := range k.NodesOfKind(ontology.KindThread) {
		if !st.PathExists(k.Root().ID, th.ID) {
			t.Fatalf("thread %s unreachable from root in the triple store", th.ID)
		}
	}
}

func TestNewUUIDShapeAndUniqueness(t *testing.T) {
	seen := map[string]bool{}
	for i := uint64(0); i < 1000; i++ {
		u := NewUUID("skx", i)
		if len(u) != 36 || u[8] != '-' || u[13] != '-' || u[18] != '-' || u[23] != '-' {
			t.Fatalf("bad UUID shape: %q", u)
		}
		if seen[u] {
			t.Fatalf("duplicate UUID %q at %d", u, i)
		}
		seen[u] = true
	}
	if NewUUID("skx", 1) != NewUUID("skx", 1) {
		t.Error("UUIDs should be deterministic per (host, seq)")
	}
	if NewUUID("skx", 1) == NewUUID("icl", 1) {
		t.Error("different hosts should produce different UUIDs")
	}
}

func TestSystemTwinCarriesCommands(t *testing.T) {
	k := testKB(t, topo.PresetICL)
	cmds := k.Root().Interface.Commands()
	if len(cmds) != 2 {
		t.Fatalf("commands: %d, want 2", len(cmds))
	}
	names := map[string]bool{}
	for _, c := range cmds {
		names[c.Name] = true
		if c.Request == nil || c.Response == nil {
			t.Errorf("command %s missing payloads", c.Name)
		}
		if err := ontology.ValidateDTMI(c.ID); err != nil {
			t.Errorf("command id %q: %v", c.ID, err)
		}
	}
	if !names["run_benchmark"] || !names["observe_kernel"] {
		t.Errorf("command names: %v", names)
	}
}
