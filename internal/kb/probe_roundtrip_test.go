package kb_test

import (
	"testing"

	"pmove/internal/docdb"
	"pmove/internal/kb"
	"pmove/internal/pmu"
	"pmove/internal/topo"
)

// probedKB builds a KB exactly the way the daemon does: preset system →
// prober wired to the pmu catalog and telemetry metric inventory →
// Generate.
func probedKB(t *testing.T) *kb.KB {
	t.Helper()
	sys := topo.MustPreset(topo.PresetICL)
	p := topo.NewProber()
	p.EventLister = func(arch string) []string {
		cat, err := pmu.CatalogFor(arch)
		if err != nil {
			return nil
		}
		return cat.Names()
	}
	p.MetricLister = func(*topo.System) []string {
		return []string{"kernel.percpu.cpu.idle", "kernel.percpu.cpu.user"}
	}
	probe, err := p.Probe(sys)
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	k, err := kb.Generate(probe, kb.Config{InfluxAddr: "tsdb:8086", MongoAddr: "docdb:27017"})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if err := k.Validate(); err != nil {
		t.Fatalf("generated KB invalid: %v", err)
	}
	return k
}

// TestProbeKBRoundTrip pins the probe → Generate → Persist → Load arc:
// the loaded KB must carry the same node set, root and config as the
// generated one, and re-persisting must be idempotent (stable document
// counts, no duplicate twins).
func TestProbeKBRoundTrip(t *testing.T) {
	k := probedKB(t)
	db := docdb.New()
	if err := k.Persist(db); err != nil {
		t.Fatalf("persist: %v", err)
	}

	loaded, err := kb.Load(db, k.Host)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if loaded.Len() != k.Len() {
		t.Fatalf("loaded %d nodes, persisted %d", loaded.Len(), k.Len())
	}
	if loaded.Root().ID != k.Root().ID {
		t.Errorf("root changed: %q -> %q", k.Root().ID, loaded.Root().ID)
	}
	if loaded.Config != k.Config {
		t.Errorf("config changed: %+v -> %+v", k.Config, loaded.Config)
	}
	for _, n := range k.Nodes() {
		ln, ok := loaded.Node(n.ID)
		if !ok {
			t.Fatalf("node %s lost in round trip", n.ID)
		}
		if ln.Kind != n.Kind || ln.Parent != n.Parent || len(ln.Children) != len(n.Children) {
			t.Errorf("node %s changed shape: %+v -> %+v", n.ID, n, ln)
		}
	}
	if err := loaded.Validate(); err != nil {
		t.Fatalf("loaded KB invalid: %v", err)
	}

	// Idempotency: persisting the same KB again must not grow the store.
	before := db.Collection(kb.CollInterfaces).Count(nil)
	if err := k.Persist(db); err != nil {
		t.Fatalf("re-persist: %v", err)
	}
	if after := db.Collection(kb.CollInterfaces).Count(nil); after != before {
		t.Errorf("re-persist grew interface docs %d -> %d", before, after)
	}
}

// TestProbeKBObservationRoundTrip pins that dynamic entries attached
// after probing survive persistence alongside the twins.
func TestProbeKBObservationRoundTrip(t *testing.T) {
	k := probedKB(t)
	obs := &kb.Observation{
		ID:      "obs:rt-1",
		Type:    "ObservationInterface",
		Tag:     "rt-tag",
		Host:    k.Host,
		Command: "sleep 1",
		FreqHz:  25,
		Metrics: []kb.MetricRef{{Measurement: "kernel_percpu_cpu_idle", Fields: []string{"_cpu0"}}},
	}
	if err := k.Attach(obs); err != nil {
		t.Fatalf("attach: %v", err)
	}
	db := docdb.New()
	if err := k.Persist(db); err != nil {
		t.Fatalf("persist: %v", err)
	}
	loaded, err := kb.Load(db, k.Host)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	got, ok := loaded.FindObservation("rt-tag")
	if !ok {
		t.Fatal("observation lost in round trip")
	}
	if got.Command != obs.Command || got.FreqHz != obs.FreqHz || len(got.Metrics) != 1 {
		t.Errorf("observation changed: %+v -> %+v", obs, got)
	}
}
