package kb

import (
	"fmt"
	"sort"
	"strings"

	"pmove/internal/ontology"
)

// Entry is a live attachment to the KB: an observation, a benchmark
// result, or a process instantiation. Entries are serialised to the
// document database alongside the component interfaces.
type Entry interface {
	Kind() ontology.EntryKind
	EntryID() string
}

// MetricRef names one sampled metric stream: the measurement in the
// time-series DB and the fields (instance names) recorded.
type MetricRef struct {
	Measurement string   `json:"measurement"`
	Fields      []string `json:"fields"`
}

// Observation encodes "sampled hardware performance events and system
// metrics, executed commands, generated affinity, time and other relevant
// metadata" (paper §III-C, Listing 2). The Tag links the entry to its
// time-series rows in the tsdb.
type Observation struct {
	ID          string      `json:"@id"`
	Type        string      `json:"@type"`
	Tag         string      `json:"tag"` // unique observation id, the tsdb tag
	Host        string      `json:"host"`
	Command     string      `json:"command"`
	Args        []string    `json:"args,omitempty"`
	PinStrategy string      `json:"pin_strategy,omitempty"`
	Affinity    []int       `json:"affinity,omitempty"`
	StartNanos  int64       `json:"start_ns"`
	EndNanos    int64       `json:"end_ns"`
	FreqHz      float64     `json:"sampling_hz"`
	Metrics     []MetricRef `json:"metrics"`
	Report      string      `json:"report,omitempty"`
}

// Kind implements Entry.
func (o *Observation) Kind() ontology.EntryKind { return ontology.EntryObservation }

// EntryID implements Entry.
func (o *Observation) EntryID() string { return o.ID }

// Queries generates the retrieval statements for the observation — the
// exact shape of the paper's Listing 3:
//
//	SELECT "_cpu0", "_cpu1" FROM "kernel_percpu_cpu_idle" WHERE tag="<tag>"
//
// One query per sampled metric, fields sorted.
func (o *Observation) Queries() []string {
	var out []string
	for _, m := range o.Metrics {
		fields := append([]string(nil), m.Fields...)
		sort.Strings(fields)
		var q strings.Builder
		q.WriteString("SELECT ")
		for i, f := range fields {
			if i > 0 {
				q.WriteString(", ")
			}
			fmt.Fprintf(&q, "%q", f)
		}
		fmt.Fprintf(&q, " FROM %q WHERE tag=%q", m.Measurement, o.Tag)
		out = append(out, q.String())
	}
	sort.Strings(out)
	return out
}

// BenchmarkResult is the helper class recording one benchmark metric
// (paper §III-C: "BenchmarkInterface, and BenchmarkResult as a helper
// class, is designed to record benchmark results").
type BenchmarkResult struct {
	Metric string  `json:"metric"` // e.g. "bandwidth_GBps", "gflops"
	Value  float64 `json:"value"`
	Unit   string  `json:"unit"`
	// Params identify the configuration: level, ISA, threads, kernel.
	Params map[string]string `json:"params,omitempty"`
}

// Benchmark records one benchmark execution (CARM, STREAM, HPCG).
type Benchmark struct {
	ID         string            `json:"@id"`
	Type       string            `json:"@type"`
	Host       string            `json:"host"`
	Name       string            `json:"name"` // "carm", "stream", "hpcg"
	Compiler   string            `json:"compiler,omitempty"`
	StartNanos int64             `json:"start_ns"`
	EndNanos   int64             `json:"end_ns"`
	Results    []BenchmarkResult `json:"results"`
}

// Kind implements Entry.
func (b *Benchmark) Kind() ontology.EntryKind { return ontology.EntryBenchmark }

// EntryID implements Entry.
func (b *Benchmark) EntryID() string { return b.ID }

// Result returns the first result whose metric and params match; params
// with empty values act as wildcards.
func (b *Benchmark) Result(metric string, params map[string]string) (BenchmarkResult, bool) {
	for _, r := range b.Results {
		if r.Metric != metric {
			continue
		}
		ok := true
		for k, v := range params {
			if v != "" && r.Params[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return r, true
		}
	}
	return BenchmarkResult{}, false
}

// Process is the re-instantiated ProcessInterface: "a ProcessInterface is
// re-instantiated each time it is invoked, reflecting the processes'
// dynamic nature".
type Process struct {
	ID         string `json:"@id"`
	Type       string `json:"@type"`
	Host       string `json:"host"`
	PID        int    `json:"pid"`
	Command    string `json:"command"`
	StartNanos int64  `json:"start_ns"`
	// Threads maps software thread index to hardware thread id.
	Threads map[string]int `json:"threads,omitempty"`
}

// Kind implements Entry.
func (p *Process) Kind() ontology.EntryKind { return ontology.EntryProcess }

// EntryID implements Entry.
func (p *Process) EntryID() string { return p.ID }

// Attach appends an entry to the KB ("It captures more about the system it
// represents as time passes by attaching new entries").
func (k *KB) Attach(e Entry) error {
	if e.EntryID() == "" {
		return fmt.Errorf("kb: entry of kind %s has no id", e.Kind())
	}
	for _, have := range k.Entries {
		if have.EntryID() == e.EntryID() {
			return fmt.Errorf("kb: duplicate entry id %s", e.EntryID())
		}
	}
	k.Entries = append(k.Entries, e)
	return nil
}

// Observations returns all observation entries in attachment order.
func (k *KB) Observations() []*Observation {
	var out []*Observation
	for _, e := range k.Entries {
		if o, ok := e.(*Observation); ok {
			out = append(out, o)
		}
	}
	return out
}

// Benchmarks returns all benchmark entries, optionally filtered by name
// ("" for all).
func (k *KB) Benchmarks(name string) []*Benchmark {
	var out []*Benchmark
	for _, e := range k.Entries {
		if b, ok := e.(*Benchmark); ok && (name == "" || b.Name == name) {
			out = append(out, b)
		}
	}
	return out
}

// FindObservation returns the observation with the given tag.
func (k *KB) FindObservation(tag string) (*Observation, bool) {
	for _, o := range k.Observations() {
		if o.Tag == tag {
			return o, true
		}
	}
	return nil, false
}

// NewUUID derives a deterministic-looking unique tag from a sequence
// number and host: P-MoVE tags observations with UUIDs (Listing 2). The
// result is formatted like a UUID for fidelity but derives from the
// arguments so replays are reproducible.
func NewUUID(host string, seq uint64) string {
	h := uint64(1469598103934665603)
	for _, c := range []byte(host) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	h ^= seq * 0x9e3779b97f4a7c15
	h2 := h * 0xbf58476d1ce4e5b9
	return fmt.Sprintf("%08x-%04x-%04x-%04x-%012x",
		uint32(h), uint16(h>>32), uint16(h>>48)&0x0fff|0x4000,
		uint16(h2)&0x3fff|0x8000, h2>>16&0xffffffffffff)
}
