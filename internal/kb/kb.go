// Package kb implements P-MoVE's Knowledge Base: a tree of DTDL
// interfaces — one standalone (sub)twin per hardware component — generated
// from an in-depth probing of the target system, enriched live with
// process, benchmark and observation entries, and used to drive every
// other function of the framework (sampler configuration, dashboard
// generation, linked-data queries; paper §III).
package kb

import (
	"fmt"
	"sort"
	"strings"

	"pmove/internal/jsonld"
	"pmove/internal/ontology"
	"pmove/internal/pmu"
	"pmove/internal/topo"
)

// Config carries the environment parameters the daemon reads at start
// (Figure 3 step ⓪): database addresses and the visualization token.
type Config struct {
	InfluxAddr   string `json:"influx_addr"`
	MongoAddr    string `json:"mongo_addr"`
	GrafanaToken string `json:"grafana_token"`
}

// Node is one component twin in the KB tree.
type Node struct {
	ID        string
	Kind      ontology.ComponentKind
	Ordinal   int
	Interface *ontology.Interface
	Parent    string   // DTMI of parent, "" for root
	Children  []string // DTMIs, sorted
}

// KB is the knowledge base of one system. It is "a snapshot of every piece
// of information obtained from probing and previous analyses … dynamic and
// evolving".
type KB struct {
	Host   string
	Config Config
	// Probe is the raw probe document the KB was generated from.
	Probe *topo.ProbeDoc

	nodes map[string]*Node
	root  string

	// Entries are the live attachments: observations, benchmark results,
	// process instantiations.
	Entries []Entry
}

// Root returns the root node (the system twin).
func (k *KB) Root() *Node { return k.nodes[k.root] }

// Node returns a component twin by DTMI.
func (k *KB) Node(id string) (*Node, bool) {
	n, ok := k.nodes[id]
	return n, ok
}

// Nodes returns all nodes sorted by DTMI.
func (k *KB) Nodes() []*Node {
	out := make([]*Node, 0, len(k.nodes))
	for _, n := range k.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NodesOfKind returns all nodes of one component kind, sorted by ordinal.
func (k *KB) NodesOfKind(kind ontology.ComponentKind) []*Node {
	var out []*Node
	for _, n := range k.nodes {
		if n.Kind == kind {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ordinal < out[j].Ordinal })
	return out
}

// Len returns the number of component twins.
func (k *KB) Len() int { return len(k.nodes) }

// addNode inserts a node and wires the parent relationship (both the tree
// pointer and the DTDL Relationship content).
func (k *KB) addNode(parent string, kind ontology.ComponentKind, ordinal int, iface *ontology.Interface) (*Node, error) {
	n := &Node{ID: iface.ID, Kind: kind, Ordinal: ordinal, Interface: iface, Parent: parent}
	if _, dup := k.nodes[n.ID]; dup {
		return nil, fmt.Errorf("kb: duplicate component id %s", n.ID)
	}
	if parent != "" {
		p, ok := k.nodes[parent]
		if !ok {
			return nil, fmt.Errorf("kb: parent %s of %s not found", parent, n.ID)
		}
		if !ontology.CanContain(p.Kind, kind) {
			return nil, fmt.Errorf("kb: ontology forbids %s containing %s", p.Kind, kind)
		}
		p.Children = append(p.Children, n.ID)
		sort.Strings(p.Children)
		p.Interface.AddRelationship(ontology.RelContains, n.ID)
	}
	k.nodes[n.ID] = n
	return n, nil
}

// Validate checks tree integrity: a single root, acyclic parent links,
// valid interfaces.
func (k *KB) Validate() error {
	if k.root == "" {
		return fmt.Errorf("kb: no root")
	}
	roots := 0
	for _, n := range k.nodes {
		if n.Parent == "" {
			roots++
		} else if _, ok := k.nodes[n.Parent]; !ok {
			return fmt.Errorf("kb: node %s has unknown parent %s", n.ID, n.Parent)
		}
		if err := n.Interface.Validate(); err != nil {
			return err
		}
		for _, c := range n.Children {
			child, ok := k.nodes[c]
			if !ok {
				return fmt.Errorf("kb: node %s lists unknown child %s", n.ID, c)
			}
			if child.Parent != n.ID {
				return fmt.Errorf("kb: child %s of %s points to parent %s", c, n.ID, child.Parent)
			}
		}
	}
	if roots != 1 {
		return fmt.Errorf("kb: %d roots, want exactly 1", roots)
	}
	// Reachability from the root (acyclic by construction of parents).
	seen := map[string]bool{}
	var walk func(id string)
	walk = func(id string) {
		if seen[id] {
			return
		}
		seen[id] = true
		for _, c := range k.nodes[id].Children {
			walk(c)
		}
	}
	walk(k.root)
	if len(seen) != len(k.nodes) {
		return fmt.Errorf("kb: %d of %d nodes unreachable from root", len(k.nodes)-len(seen), len(k.nodes))
	}
	return nil
}

// Generate builds the knowledge base from a probe document (Figure 3 step
// ②→③): every component becomes an Interface, relationships are encoded,
// and the available PMU events and software metrics are filtered and
// mapped onto the components as HW/SW telemetry.
func Generate(probe *topo.ProbeDoc, cfg Config) (*KB, error) {
	sys := probe.System
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	k := &KB{Host: sys.Hostname, Config: cfg, Probe: probe, nodes: map[string]*Node{}}
	host := sanitizeHost(sys.Hostname)

	mkIface := func(kind ontology.ComponentKind, ordinal int, display string) (*ontology.Interface, error) {
		id, err := ontology.ComponentID(host, kind, ordinal)
		if err != nil {
			return nil, err
		}
		return ontology.NewInterface(id, display)
	}

	// Root: the system twin.
	sysIface, err := mkIface(ontology.KindSystem, 0, sys.Hostname)
	if err != nil {
		return nil, err
	}
	sysIface.AddProperty("hostname", sys.Hostname)
	sysIface.AddProperty("os", sys.OS.Name)
	sysIface.AddProperty("kernel", sys.OS.Kernel)
	sysIface.AddProperty("arch", sys.OS.Arch)
	sysIface.AddProperty("cpu_model", sys.CPU.Model)
	sysIface.AddProperty("microarch", sys.CPU.Microarch)
	sysIface.AddProperty("vendor", string(sys.CPU.Vendor))
	sysIface.AddProperty("sockets", sys.NumSockets())
	sysIface.AddProperty("cores", sys.NumCores())
	sysIface.AddProperty("threads", sys.NumThreads())
	sysIface.AddSWTelemetry("mem_used", "mem.util.used", "mem_util_used", "", "Used physical memory in bytes")
	sysIface.AddSWTelemetry("loadavg", "kernel.all.load", "kernel_all_load", "1 minute", "1-minute load average")
	sysIface.AddSWTelemetry("nprocs", "kernel.all.nprocs", "kernel_all_nprocs", "", "Number of processes")
	// The system twin's Commands: the actions the daemon can invoke on it
	// (DTDL's sixth metamodel class).
	sysIface.AddCommand("run_benchmark",
		&ontology.CommandPayload{Name: "benchmark", Schema: "string"},
		&ontology.CommandPayload{Name: "entry_id", Schema: "string"})
	sysIface.AddCommand("observe_kernel",
		&ontology.CommandPayload{Name: "command_line", Schema: "string"},
		&ontology.CommandPayload{Name: "observation_tag", Schema: "string"})
	root, err := k.addNodeRoot(ontology.KindSystem, 0, sysIface)
	if err != nil {
		return nil, err
	}

	// HW events available on the microarchitecture (libpfm4 inventory).
	hwEvents := probe.PMUEvents
	if len(hwEvents) == 0 {
		if cat, err := pmu.CatalogFor(sys.CPU.Microarch); err == nil {
			hwEvents = cat.Names()
		}
	}

	for _, sk := range sys.Sockets {
		skIface, err := mkIface(ontology.KindSocket, sk.ID, fmt.Sprintf("%s socket %d", sys.Hostname, sk.ID))
		if err != nil {
			return nil, err
		}
		skIface.AddProperty("cores", len(sk.Cores))
		skIface.AddProperty("model", sys.CPU.Model)
		skIface.AddHWTelemetry("energy_pkg", "rapl", pmu.RAPLEnergyPkg,
			"perfevent_hwcounters_RAPL_ENERGY_PKG", fmt.Sprintf("_socket%d", sk.ID),
			"Package energy in microjoules")
		skNode, err := k.addNode(root.ID, ontology.KindSocket, sk.ID, skIface)
		if err != nil {
			return nil, err
		}

		for _, c := range sk.Cores {
			cIface, err := mkIface(ontology.KindCore, c.ID, fmt.Sprintf("core %d", c.ID))
			if err != nil {
				return nil, err
			}
			cIface.AddProperty("socket", c.SocketID)
			cIface.AddProperty("numa", c.NUMAID)
			cNode, err := k.addNode(skNode.ID, ontology.KindCore, c.ID, cIface)
			if err != nil {
				return nil, err
			}
			for _, t := range c.Threads {
				tIface, err := mkIface(ontology.KindThread, t.ID, fmt.Sprintf("cpu%d", t.ID))
				if err != nil {
					return nil, err
				}
				tIface.AddProperty("core", t.CoreID)
				field := fmt.Sprintf("_cpu%d", t.ID)
				tIface.AddSWTelemetry("cpu_idle", "kernel.percpu.cpu.idle", "kernel_percpu_cpu_idle", field, "Per-CPU idle fraction")
				tIface.AddSWTelemetry("cpu_user", "kernel.percpu.cpu.user", "kernel_percpu_cpu_user", field, "Per-CPU user fraction")
				for _, ev := range hwEvents {
					if strings.HasPrefix(ev, "RAPL_") {
						continue // package scope, attached to the socket
					}
					tIface.AddHWTelemetry(
						telemetryName(ev), "core", ev,
						"perfevent_hwcounters_"+sanitizeMetric(ev), field,
						"PMU event "+ev)
				}
				if _, err := k.addNode(cNode.ID, ontology.KindThread, t.ID, tIface); err != nil {
					return nil, err
				}
			}
			// Per-core private caches.
			for _, cache := range sys.Caches {
				if cache.Shared {
					continue
				}
				ord := c.ID*8 + int(cache.Level)
				caIface, err := mkIface(ontology.KindCache, ord, fmt.Sprintf("%s of core %d", cache.Level, c.ID))
				if err != nil {
					return nil, err
				}
				caIface.AddProperty("level", cache.Level.String())
				caIface.AddProperty("size_bytes", cache.SizeBytes)
				caIface.AddProperty("line_bytes", cache.LineBytes)
				if _, err := k.addNode(cNode.ID, ontology.KindCache, ord, caIface); err != nil {
					return nil, err
				}
			}
		}
		// Shared caches live under the socket.
		for _, cache := range sys.Caches {
			if !cache.Shared {
				continue
			}
			ord := sk.ID*8 + int(cache.Level)
			caIface, err := mkIface(ontology.KindCache, 1000+ord, fmt.Sprintf("%s of socket %d", cache.Level, sk.ID))
			if err != nil {
				return nil, err
			}
			caIface.AddProperty("level", cache.Level.String())
			caIface.AddProperty("size_bytes", cache.SizeBytes)
			caIface.AddProperty("shared", true)
			if _, err := k.addNode(skNode.ID, ontology.KindCache, 1000+ord, caIface); err != nil {
				return nil, err
			}
		}
		// NUMA nodes of this socket.
		for _, nn := range sys.NUMA {
			if nn.ID != sk.ID {
				continue
			}
			nIface, err := mkIface(ontology.KindNUMA, nn.ID, fmt.Sprintf("numa %d", nn.ID))
			if err != nil {
				return nil, err
			}
			nIface.AddProperty("memory_bytes", nn.MemoryBytes)
			nIface.AddSWTelemetry("alloc_hit", "mem.numa.alloc_hit", "mem_numa_alloc_hit",
				fmt.Sprintf("_node%d", nn.ID), "NUMA local allocation hits")
			if _, err := k.addNode(skNode.ID, ontology.KindNUMA, nn.ID, nIface); err != nil {
				return nil, err
			}
		}
	}

	// Memory, disks, NICs, GPUs under the system.
	memIface, err := mkIface(ontology.KindMemory, 0, "main memory")
	if err != nil {
		return nil, err
	}
	memIface.AddProperty("total_bytes", sys.Memory.TotalBytes)
	memIface.AddProperty("type", sys.Memory.Type)
	memIface.AddProperty("mhz", sys.Memory.MHz)
	memIface.AddSWTelemetry("mem_free", "mem.util.free", "mem_util_free", "", "Free physical memory")
	if _, err := k.addNode(root.ID, ontology.KindMemory, 0, memIface); err != nil {
		return nil, err
	}
	for di, d := range sys.Disks {
		dIface, err := mkIface(ontology.KindDisk, di, d.Name)
		if err != nil {
			return nil, err
		}
		dIface.AddProperty("model", d.Model)
		dIface.AddProperty("size_bytes", d.SizeBytes)
		dIface.AddProperty("rotational", d.Rotational)
		dIface.AddSWTelemetry("write_bytes", "disk.all.write_bytes", "disk_all_write_bytes", d.Name, "Disk write throughput")
		if _, err := k.addNode(root.ID, ontology.KindDisk, di, dIface); err != nil {
			return nil, err
		}
	}
	for ni, nic := range sys.NICs {
		nIface, err := mkIface(ontology.KindNIC, ni, nic.Name)
		if err != nil {
			return nil, err
		}
		nIface.AddProperty("speed_mbps", nic.SpeedMbps)
		nIface.AddProperty("address", nic.Address)
		nIface.AddSWTelemetry("out_bytes", "network.interface.out.bytes", "network_interface_out_bytes", nic.Name, "NIC egress bytes")
		if _, err := k.addNode(root.ID, ontology.KindNIC, ni, nIface); err != nil {
			return nil, err
		}
	}
	for _, g := range sys.GPUs {
		gIface, err := mkIface(ontology.KindGPU, g.ID, g.Model)
		if err != nil {
			return nil, err
		}
		gIface.AddProperty("model", g.Model)
		gIface.AddProperty("memory", fmt.Sprintf("%d Mb", g.MemoryMB))
		gIface.AddProperty("sms", g.SMs)
		gIface.AddProperty("numa node", g.NUMANode)
		gIface.AddProperty("bus", g.BusID)
		gIface.AddSWTelemetry("memused", "nvidia.memused", "nvidia_memused", fmt.Sprintf("_gpu%d", g.ID), "GPU memory in use")
		gIface.AddSWTelemetry("gpuactive", "nvidia.gpuactive", "nvidia_gpuactive", fmt.Sprintf("_gpu%d", g.ID), "GPU utilisation")
		gIface.AddHWTelemetry("compute_mem_throughput", "ncu",
			"gpu__compute_memory_access_throughput",
			"ncu_gpu__compute_memory_access_throughput", fmt.Sprintf("_gpu%d", g.ID),
			"Compute Memory Pipeline: throughput of internal activity within caches and DRAM")
		if _, err := k.addNode(root.ID, ontology.KindGPU, g.ID, gIface); err != nil {
			return nil, err
		}
	}

	if err := k.Validate(); err != nil {
		return nil, err
	}
	return k, nil
}

// addNodeRoot installs the root node.
func (k *KB) addNodeRoot(kind ontology.ComponentKind, ordinal int, iface *ontology.Interface) (*Node, error) {
	if k.root != "" {
		return nil, fmt.Errorf("kb: root already set")
	}
	n, err := k.addNode("", kind, ordinal, iface)
	if err != nil {
		return nil, err
	}
	k.root = n.ID
	return n, nil
}

// sanitizeHost makes a hostname DTMI-segment-safe.
func sanitizeHost(h string) string {
	var b strings.Builder
	for _, r := range h {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	s := b.String()
	if s == "" || (s[0] >= '0' && s[0] <= '9') {
		s = "h" + s
	}
	return s
}

// sanitizeMetric converts a PMU event name into a DB-safe measurement
// suffix.
func sanitizeMetric(ev string) string {
	r := strings.NewReplacer(":", "_", ".", "_", "-", "_")
	return r.Replace(ev)
}

// telemetryName converts an event name to a content name.
func telemetryName(ev string) string {
	return strings.ToLower(sanitizeMetric(ev))
}

// TripleStore expands every interface of the KB into a triple store for
// linked-data queries.
func (k *KB) TripleStore() (*jsonld.Store, error) {
	st := jsonld.NewStore()
	for _, n := range k.Nodes() {
		doc, err := n.Interface.MarshalJSONLD()
		if err != nil {
			return nil, err
		}
		if _, err := st.AddDocument(doc); err != nil {
			return nil, err
		}
	}
	return st, nil
}
