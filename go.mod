module pmove

go 1.22
