// live_carm demonstrates the §IV-B/V-E feature: construct the cache-aware
// roofline model of a target from auto-configured microbenchmarks (cached
// in the KB), then profile the likwid Triad, PeakFlops and DDOT kernels
// against the live-CARM roofs in real time, rendering the panel as text.
package main

import (
	"fmt"
	"log"

	"pmove"
)

func main() {
	d, err := pmove.NewDaemon(pmove.EnvFromOS())
	if err != nil {
		log.Fatal(err)
	}
	sys := pmove.MustPreset(pmove.PresetCSL)
	if _, err := d.AttachTarget(sys, pmove.MachineConfig{Seed: 3}, pmove.DefaultPipeline()); err != nil {
		log.Fatal(err)
	}
	if _, err := d.Probe(sys.Hostname); err != nil {
		log.Fatal(err)
	}

	threads := 8
	isa := sys.CPU.WidestISA()
	model, err := d.ConstructCARM(sys.Hostname, isa, threads)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CARM for %s (%s, %d threads): peak %.1f GFLOP/s\n", model.Host, model.ISA, model.Threads, model.PeakGFLOPS)
	for _, lvl := range []pmove.CacheLevel{pmove.L1, pmove.L2, pmove.L3, pmove.DRAM} {
		fmt.Printf("  %-4s %8.1f GB/s\n", lvl, model.MemGBps[lvl])
	}

	// A second construction is answered from the KB cache — no re-run of
	// the microbenchmarks (§IV-B1).
	if _, err := d.ConstructCARM(sys.Hostname, isa, threads); err != nil {
		log.Fatal(err)
	}
	k, _ := d.KB(sys.Hostname)
	fmt.Printf("KB carries %d CARM benchmark entr(y/ies) — reconstruction is cache-served\n\n", len(k.Benchmarks("carm")))

	// Live profiling: the Fig 9 kernels with their paper working sets.
	l1 := int64(32 << 10)
	l2 := int64(1 << 20)
	mkPhase := func(name string, wss int64) pmove.LiveCARMPhase {
		itersPerSweep := wss / 8 / int64(isa.VectorWidth())
		sweeps := int(1e8/float64(itersPerSweep)) + 1
		spec, err := pmove.LikwidKernel(name, isa, wss, sweeps)
		if err != nil {
			log.Fatal(err)
		}
		return pmove.LiveCARMPhase{Label: name, Workload: spec}
	}
	phases := []pmove.LiveCARMPhase{
		mkPhase("triad", l2/2),      // does not fit L1 -> bounded by the L2 roof
		mkPhase("peakflops", 4<<10), // register-resident -> FP ceiling
		mkPhase("ddot", l1/2),       // L1-resident -> surpasses the L2 roof
	}
	res, err := d.LiveCARM(sys.Hostname, model, phases, threads, 50)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(pmove.RenderCARM(model, res.Panel.Points(), 72, 18))
	fmt.Printf("\n%-11s %6s %12s %14s %9s\n", "kernel", "points", "median AI", "median GFLOP/s", "bound by")
	for _, s := range res.Summaries {
		fmt.Printf("%-11s %6d %12.4f %14.2f %9s\n",
			s.Label, s.N, s.MedianAI, s.MedianGF, model.BoundingLevel(s.MedianAI, s.MedianGF))
	}
}
