// gpu_ncu demonstrates §III-D, "Adding Compute Devices to P-MoVE": a GPU
// is probed into the Knowledge Base as its own (sub)twin (Listing 4), its
// SW telemetry (NVML-style) is defined on the twin, and a kernel launch
// is observed through the ncu wrapper path — the recorded HW metrics land
// in the time-series store and an ObservationInterface links them to the
// KB.
package main

import (
	"fmt"
	"log"

	"pmove"
)

func main() {
	d, err := pmove.NewDaemon(pmove.EnvFromOS())
	if err != nil {
		log.Fatal(err)
	}
	// A node with an attached NVIDIA-class GPU (the Listing 4 device).
	sys := pmove.WithGPU(pmove.MustPreset(pmove.PresetICL))
	if _, err := d.AttachTarget(sys, pmove.MachineConfig{Seed: 13}, pmove.DefaultPipeline()); err != nil {
		log.Fatal(err)
	}
	kb, err := d.Probe(sys.Hostname)
	if err != nil {
		log.Fatal(err)
	}

	// The GPU twin and its encoded telemetry.
	gpus := kb.NodesOfKind(pmove.KindGPU)
	if len(gpus) != 1 {
		log.Fatalf("expected one GPU twin, got %d", len(gpus))
	}
	g := gpus[0]
	fmt.Printf("GPU twin %s\n", g.ID)
	fmt.Printf("  model:  %v\n", g.Interface.Property("model"))
	fmt.Printf("  memory: %v\n", g.Interface.Property("memory"))
	fmt.Printf("  numa:   %v\n", g.Interface.Property("numa node"))
	for _, tel := range g.Interface.Telemetries("") {
		fmt.Printf("  %-12s %-14s sampler=%-42s db=%s\n", tel.Type, tel.Name, tel.SamplerName, tel.DBName)
	}

	// Observe a kernel through the ncu wrapper: "P-MoVE is tasked with
	// creating a wrapper script for initiating the kernel launch and
	// configuring ncu to record runtime HW performance events."
	metrics := map[string]float64{
		"gpu__compute_memory_access_throughput": 812.5, // GB/s
		"sm__throughput":                        61.2,  // % of peak
		"dram__bytes_read":                      3.2e9,
	}
	if _, err := d.ObserveGPUKernel(sys.Hostname, 0, "spmv_cuda", metrics); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nobserved kernel spmv_cuda through the ncu wrapper")

	// The metrics are in the TSDB, recallable through the usual queries.
	res, err := d.TS.QueryString(`SELECT "_gpu0" FROM "ncu_gpu__compute_memory_access_throughput"`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("ncu compute-memory throughput: %.1f GB/s at t=%dns\n", row.Values["_gpu0"], row.Time)
	}

	// And the ObservationInterface is in the KB.
	for _, o := range kb.Observations() {
		fmt.Printf("observation %s: %s (%d metric streams)\n", o.Tag, o.Command, len(o.Metrics))
	}
}
