// cluster_superdb demonstrates §III-E: several P-MoVE instances report
// their Knowledge Bases and observations to the global performance
// database (SUPERDB). Raw time-series upload (TSObservationInterface) and
// statistical aggregation (AGGObservationInterface) are both shown, plus
// the cross-machine level view of Fig 2(d) and the ML training export.
package main

import (
	"fmt"
	"log"

	"pmove"
	"pmove/internal/superdb"
)

func main() {
	global := pmove.NewSuperDB()

	// Two independent instances: skx and icl, each probing its own target
	// and running a short monitoring session.
	kbs := map[string]*pmove.KB{}
	for i, preset := range []string{pmove.PresetSKX, pmove.PresetICL} {
		d, err := pmove.NewDaemon(pmove.EnvFromOS())
		if err != nil {
			log.Fatal(err)
		}
		sys := pmove.MustPreset(preset)
		if _, err := d.AttachTarget(sys, pmove.MachineConfig{Seed: uint64(i + 1)}, pmove.DefaultPipeline()); err != nil {
			log.Fatal(err)
		}
		k, err := d.Probe(preset)
		if err != nil {
			log.Fatal(err)
		}
		kbs[preset] = k

		res, err := d.Monitor(preset, nil, 4, 20)
		if err != nil {
			log.Fatal(err)
		}

		// Report the KB and the observation to the global instance: the
		// first host ships raw time series, the second only aggregates.
		if err := global.ReportKB(k); err != nil {
			log.Fatal(err)
		}
		mode := superdb.ModeTS
		if i == 1 {
			mode = superdb.ModeAGG
		}
		if err := global.ReportObservation(res.Observation, d.TS, mode); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: reported KB (%d twins) and observation %s as %s\n",
			preset, k.Len(), res.Observation.Tag, mode)
	}

	fmt.Printf("\nSUPERDB now knows hosts: %v\n", global.Hosts())
	for _, h := range global.Hosts() {
		fmt.Printf("  %s: %d observation(s)\n", h, len(global.Observations(h)))
	}

	// Cross-machine comparison (Fig 2d): one level view spanning both
	// systems' sockets, turned into a single dashboard.
	view, err := pmove.CrossLevelView(pmove.KindSocket, kbs[pmove.PresetSKX], kbs[pmove.PresetICL])
	if err != nil {
		log.Fatal(err)
	}
	d, err := pmove.NewDaemon(pmove.EnvFromOS())
	if err != nil {
		log.Fatal(err)
	}
	dash, err := d.Gen.FromView(view)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncross-machine dashboard %q: %d panels\n", dash.Title, len(dash.Panels))

	// ML export: flattened aggregate rows (the SUPERDB training path).
	rows, err := global.ExportML()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nML export: %d aggregated observation row(s)\n", len(rows))
	for _, r := range rows {
		fmt.Printf("  %s %s (%s): %d aggregate series\n", r.Host, r.Tag, r.Command, len(r.Aggs))
		for j, a := range r.Aggs {
			if j == 3 {
				fmt.Printf("    ...\n")
				break
			}
			fmt.Printf("    %s %s: n=%d mean=%.3g p99=%.3g\n", a.Measurement, a.Field, a.Count, a.Mean, a.P99)
		}
	}
}
