// abstraction demonstrates the Abstraction Layer of §IV-A: the same
// generic events resolve to different hardware-event formulas on Intel
// Cascade Lake and AMD Zen3 (Table I), a user-supplied configuration file
// registers a new mapping, and a resolved formula is evaluated against
// live counters from an observed kernel on both vendors.
package main

import (
	"fmt"
	"log"
	"strings"

	"pmove"
	"pmove/internal/abst"
)

func main() {
	reg, err := pmove.DefaultAbstRegistry()
	if err != nil {
		log.Fatal(err)
	}

	// The paper's example call.
	toks, err := reg.Get("skl", "TOTAL_MEMORY_OPERATIONS")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("> pmu_utils.get(%q, %q)\n> %q\n\n", "skl", "TOTAL_MEMORY_OPERATIONS", toks)

	// Table I, resolved live.
	fmt.Printf("%-26s | %-60s | %-52s\n", "generic", "Intel Cascade", "AMD Zen3")
	for _, g := range []string{
		abst.GenericEnergy, abst.GenericTotalMemOps, abst.GenericL3Hit,
		abst.GenericL1DataMiss, abst.GenericFPDivRetired,
	} {
		render := func(pmuName string) string {
			t, err := reg.Get(pmuName, g)
			if err != nil {
				return "Not Supported"
			}
			return strings.Join(t, " ")
		}
		fmt.Printf("%-26s | %-60s | %-52s\n", g, render("cascade"), render("zen3"))
	}

	// Registering a user configuration file (the paper's grammar).
	userCfg := `[myarch | lab_cpu]
IPC_NUMERATOR: INSTRUCTION_RETIRED
MEM_PER_INSTR: MEM_INST_RETIRED:ALL_LOADS / INSTRUCTION_RETIRED
`
	cfg, err := abst.ParseConfig(strings.NewReader(userCfg))
	if err != nil {
		log.Fatal(err)
	}
	if err := reg.Register(cfg); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nregistered user config for %q (aliases %v): generics %v\n",
		cfg.PMU, cfg.Aliases, cfg.Generics())

	// Evaluate a generic event against real counters on both vendors: run
	// the same daxpy kernel, then compute FLOPS_DOUBLE through the layer.
	for _, preset := range []string{pmove.PresetCSL, pmove.PresetZEN3} {
		sys := pmove.MustPreset(preset)
		m, err := pmove.NewMachine(sys, pmove.MachineConfig{Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		microarch := sys.CPU.Microarch
		f, err := reg.Lookup(microarch, abst.GenericFlopsDouble)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.ProgramAll(f.Events()); err != nil {
			log.Fatal(err)
		}
		spec, err := pmove.LikwidKernel("daxpy", sys.CPU.WidestISA(), 1<<20, 500)
		if err != nil {
			log.Fatal(err)
		}
		pin, err := pmove.Pin(sys, pmove.PinBalanced, 4)
		if err != nil {
			log.Fatal(err)
		}
		exec, err := m.Run(spec, pin)
		if err != nil {
			log.Fatal(err)
		}
		// Read the needed counters and evaluate the vendor formula.
		flops, err := f.Eval(func(ev string) (float64, error) {
			var total float64
			for _, hw := range pin {
				tp, err := m.ThreadPMU(hw)
				if err != nil {
					return 0, err
				}
				v, err := tp.Read(ev)
				if err != nil {
					return 0, err
				}
				total += float64(v)
			}
			return total, nil
		})
		if err != nil {
			log.Fatal(err)
		}
		gflops := flops / exec.Duration / 1e9
		fmt.Printf("\n%s (%s): FLOPS_DOUBLE = %s\n", preset, microarch, strings.Join(f.Strings(), " "))
		fmt.Printf("  measured %.1f GFLOP/s via the layer (engine reports %.1f)\n", gflops, exec.GFLOPS)
	}
}
