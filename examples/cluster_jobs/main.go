// cluster_jobs demonstrates the cluster-level extension sketched in the
// paper's conclusion: a simulated cluster of icl nodes runs a batch of
// jobs with different communication patterns through a FIFO scheduler;
// job-specific metadata (submit/start/end, nodes, compute vs
// communication split, NIC telemetry) is collected into the cluster KB,
// and the anomaly scanner plus the what-if predictor close the loop.
package main

import (
	"fmt"
	"log"

	"pmove"
	"pmove/internal/cluster"
	"pmove/internal/whatif"
)

func main() {
	fabric := cluster.Interconnect{LinkGBs: 12.5, LatencyMicros: 2}
	c, err := cluster.New(pmove.PresetICL, 4, fabric, 7)
	if err != nil {
		log.Fatal(err)
	}
	s := c.Scheduler()

	mkJob := func(name, user string, nodes int, comm cluster.CommSpec) cluster.Job {
		spec, err := pmove.LikwidKernel("triad", pmove.ISAAVX2, 4<<20, 400)
		if err != nil {
			log.Fatal(err)
		}
		return cluster.Job{
			Name: name, User: user, Nodes: nodes,
			ThreadsPerNode: 8, Workload: spec, Comm: comm,
		}
	}

	jobs := []cluster.Job{
		mkJob("cfd-halo", "alice", 4, cluster.CommSpec{Pattern: cluster.CommHalo, BytesPerStep: 8 << 20, Steps: 200}),
		mkJob("kmeans-allreduce", "bob", 2, cluster.CommSpec{Pattern: cluster.CommAllReduce, BytesPerStep: 2 << 20, Steps: 300}),
		mkJob("fft-alltoall", "carol", 4, cluster.CommSpec{Pattern: cluster.CommAllToAll, BytesPerStep: 4 << 20, Steps: 100}),
		mkJob("serial-postproc", "bob", 1, cluster.CommSpec{}),
	}
	for _, j := range jobs {
		if _, err := s.Submit(j); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("submitted %d jobs to a %d-node cluster (queue %d, running %d)\n\n",
		len(jobs), len(c.Nodes()), s.QueueLength(), s.RunningCount())

	if err := s.Drain(3600); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-18s %-6s %5s %9s %9s %10s %10s %12s\n",
		"job", "user", "nodes", "wait (s)", "run (s)", "comp (s)", "comm (s)", "comm bytes")
	for _, r := range s.Records() {
		fmt.Printf("%-18s %-6s %5d %9.4f %9.4f %10.4f %10.4f %12d\n",
			r.Name, r.User, len(r.NodeNames), r.WaitSeconds(), r.ElapsedSeconds(),
			r.ComputeSecs, r.CommSecs, r.CommBytes)
	}

	// Cluster KB: per-node twins + job metadata.
	ckb, err := c.BuildKB()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncluster KB: %d node twins, %d job records\n", len(ckb.Nodes), len(ckb.Jobs))
	for _, n := range c.Nodes() {
		fmt.Printf("  %s: %d KB components, %d NIC bytes shipped\n",
			n.Name, ckb.Nodes[n.Name].Len(), n.NICBytes())
	}

	// What-if: would the all-to-all job run faster on a bigger node?
	target := jobs[2]
	rec, err := whatif.Recommend(pmove.PresetICL, target.Workload, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwhat-if for %q at 16 threads/node: %s\n", target.Name, rec.Suggestion)
}
