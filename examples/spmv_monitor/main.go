// spmv_monitor reproduces the §V-D scenario: observe MKL-class and
// merge-path SpMV kernels on the Cascade Lake server while sampling the
// PMU events of Fig 7 (scalar/AVX-512 FP instructions, memory
// instructions, package power), with original and RCM-reordered matrices.
// Both kernels really multiply; the analytic engine replays the runs with
// live telemetry and the daemon attaches an ObservationInterface per phase.
package main

import (
	"fmt"
	"log"

	"pmove"
	"pmove/internal/abst"
	"pmove/internal/spmv"
)

func main() {
	d, err := pmove.NewDaemon(pmove.EnvFromOS())
	if err != nil {
		log.Fatal(err)
	}
	sys := pmove.MustPreset(pmove.PresetCSL)
	if _, err := d.AttachTarget(sys, pmove.MachineConfig{Seed: 7}, pmove.DefaultPipeline()); err != nil {
		log.Fatal(err)
	}
	if _, err := d.Probe(sys.Hostname); err != nil {
		log.Fatal(err)
	}

	threads := 8
	matrix := "hugetrace-00020"
	base, err := pmove.GenerateMatrix(matrix, 360000, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matrix %s (synthetic): %d rows, %d nnz, avg bandwidth %.0f\n\n",
		matrix, base.Rows, base.NNZ(), base.AvgBandwidth())

	fmt.Printf("%-8s %-6s %10s %12s %12s %12s %9s\n",
		"order", "algo", "time (s)", "scalar DP", "AVX512 DP", "mem instr", "GFLOP/s")
	totals := map[pmove.Ordering]float64{}
	for _, ord := range []pmove.Ordering{pmove.OrderNone, pmove.OrderRCM} {
		mat, _, err := pmove.Reorder(base, ord, 3)
		if err != nil {
			log.Fatal(err)
		}
		for _, algo := range []pmove.SpMVAlgorithm{pmove.AlgoMKL, pmove.AlgoMerge} {
			// Real computation first: verify the kernels agree.
			x := make([]float64, mat.Cols)
			y := make([]float64, mat.Rows)
			for i := range x {
				x[i] = 1
			}
			if err := pmove.SpMV(mat, algo, x, y, threads); err != nil {
				log.Fatal(err)
			}

			// Scenario B observation with the Fig 7 event set, repeated
			// so the phase spans many sampling intervals.
			spec, err := spmv.DeriveWorkloadRepeated(sys, mat, algo, threads, 100)
			if err != nil {
				log.Fatal(err)
			}
			res, err := d.Observe(pmove.ObserveRequest{
				Host:     sys.Hostname,
				Workload: spec,
				Command:  fmt.Sprintf("spmv --algo %s --order %s", algo, ord),
				Threads:  threads,
				Pin:      pmove.PinBalanced,
				GenericEvents: []string{
					abst.GenericScalarDouble, abst.GenericAVX512Double,
					abst.GenericTotalMemOps, abst.GenericEnergy,
				},
				FreqHz: 10,
			})
			if err != nil {
				log.Fatal(err)
			}
			e := res.Execution
			fmt.Printf("%-8s %-6s %10.4f %12.3e %12.3e %12.3e %9.2f\n",
				ord, algo, e.Duration,
				float64(e.TotalTruth("FP_ARITH:SCALAR_DOUBLE")),
				float64(e.TotalTruth("FP_ARITH:512B_PACKED_DOUBLE")),
				float64(e.TotalTruth("MEM_INST_RETIRED:ALL_LOADS")+e.TotalTruth("MEM_INST_RETIRED:ALL_STORES")),
				e.GFLOPS)
			totals[ord] += e.Duration
		}
	}
	fmt.Printf("\ntotal original %.4fs, rcm %.4fs -> rcm is %.1f%% faster (paper: ~22%%)\n",
		totals[pmove.OrderNone], totals[pmove.OrderRCM],
		(totals[pmove.OrderNone]-totals[pmove.OrderRCM])/totals[pmove.OrderNone]*100)

	// Every phase left an ObservationInterface in the KB with recall
	// queries.
	k, err := d.KB(sys.Hostname)
	if err != nil {
		log.Fatal(err)
	}
	obs := k.Observations()
	fmt.Printf("\n%d observations attached to the KB; first recall query:\n  %s\n",
		len(obs), obs[0].Queries()[0])
}
