// Quickstart: probe a simulated Skylake-X server, generate its Knowledge
// Base, inspect the component tree through the three views, monitor the
// system for a few (virtual) seconds, and print an auto-generated
// dashboard — the minimal end-to-end tour of P-MoVE's pipeline
// (Figure 3, steps ⓪-③ plus Scenario A).
package main

import (
	"fmt"
	"log"

	"pmove"
)

func main() {
	// Step ⓪: the daemon reads its environment (database addresses,
	// Grafana token); unset variables select embedded instances.
	d, err := pmove.NewDaemon(pmove.EnvFromOS())
	if err != nil {
		log.Fatal(err)
	}

	// Attach the target system. On a real deployment this is a remote
	// machine running the PCP samplers; here it is the simulated skx
	// server of Table II.
	sys := pmove.MustPreset(pmove.PresetSKX)
	if _, err := d.AttachTarget(sys, pmove.MachineConfig{Seed: 42}, pmove.DefaultPipeline()); err != nil {
		log.Fatal(err)
	}

	// Steps ①-③: probe the target, generate the KB, insert into the
	// document store.
	kb, err := d.Probe(sys.Hostname)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("knowledge base for %s: %d component twins\n", kb.Host, kb.Len())
	fmt.Printf("root twin: %s\n\n", kb.Root().ID)

	// The three views of §III-B.
	threads := kb.NodesOfKind(pmove.KindThread)
	focus, err := kb.FocusView(threads[0].ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", focus.Title)
	for _, n := range focus.Nodes {
		fmt.Printf("  %-10s %s\n", n.Kind, n.ID)
	}

	level, err := kb.LevelView(pmove.KindSocket)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n", level.Title)

	sub, err := kb.SubtreeView(kb.NodesOfKind(pmove.KindCore)[0].ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d components\n\n", sub.Title, len(sub.Nodes))

	// Scenario A: monitor system state for 10 virtual seconds at 2 Hz.
	res, err := d.Monitor(sys.Hostname, nil, 2, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monitored: %s\n", res.Observation.Report)
	fmt.Printf("observation tag: %s\n", res.Observation.Tag)
	fmt.Println("auto-generated queries (Listing 3 style):")
	for i, q := range res.Observation.Queries() {
		if i == 3 {
			fmt.Printf("  ... and %d more\n", len(res.Observation.Queries())-3)
			break
		}
		fmt.Printf("  %s\n", q)
	}

	// Render the dashboard (the terminal stand-in for Grafana).
	fmt.Println()
	out, err := pmove.RenderDashboard(d.TS, res.Dashboard, 64)
	if err != nil {
		log.Fatal(err)
	}
	// Print only the first panels to keep the tour short.
	lines := 0
	for _, line := range splitLines(out) {
		fmt.Println(line)
		lines++
		if lines > 14 {
			fmt.Println("  ...")
			break
		}
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
