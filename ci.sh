#!/bin/sh
# Tier-1 gate: formatting, vet, build, and the full test suite under the
# race detector. Run from the repo root; exits non-zero on any failure.
set -eu

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...
echo "ci: all green"
