#!/bin/sh
# Tier-1 gate: formatting, vet, build, and the full test suite under the
# race detector. Run from the repo root; exits non-zero on any failure.
set -eu

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race -coverprofile=coverage.out -covermode=atomic ./...

# Coverage floor: the total must not regress below the baseline recorded
# when the test substrate landed (measured 81.8% when the columnar
# storage engine landed; floor set with a small drift allowance). Raise
# the floor when coverage grows, never lower it.
coverage_floor=81.0
total=$(go tool cover -func=coverage.out | awk '/^total:/ { gsub(/%/, "", $NF); print $NF }')
rm -f coverage.out
echo "coverage: total ${total}% (floor ${coverage_floor}%)"
if ! awk -v t="$total" -v f="$coverage_floor" 'BEGIN { exit (t + 0 >= f + 0) ? 0 : 1 }'; then
    echo "coverage gate: total ${total}% fell below the ${coverage_floor}% floor" >&2
    exit 1
fi

# Fuzz smoke: each wire-protocol fuzz target runs 10s of real fuzzing
# (their checked-in seed corpora under testdata/fuzz/ already ran in the
# plain `go test` pass above). One -fuzz invocation per target, as the
# fuzz engine requires.
fuzz_smoke() {
    pkg=$1
    target=$2
    echo "fuzz smoke: $target ($pkg)"
    go test -run '^$' -fuzz "^${target}\$" -fuzztime 10s "$pkg"
}
fuzz_smoke ./internal/tsdb FuzzDecodeLine
fuzz_smoke ./internal/tsdb FuzzEncodeDecodeRoundTrip
fuzz_smoke ./internal/tsdb FuzzBatchFrame
fuzz_smoke ./internal/tsdb FuzzParseQuery
fuzz_smoke ./internal/tsdb FuzzBlockDecode
fuzz_smoke ./internal/introspect FuzzParseTraceparent
fuzz_smoke ./internal/docdb FuzzDocdbFrame
fuzz_smoke ./internal/storage FuzzWALRecord

# Benchmark smoke: every benchmark must still compile and survive one
# iteration — catches bit-rotted b.Run setups without paying for real
# measurement.
go test -run NONE -bench . -benchtime 1x ./...

# Perf record: sweep the durable sharded-ingest benchmark (writer
# goroutines x batch size against a WAL with fsync=always) and record
# the points/s trajectory in BENCH_7.json. Gate: group-committed
# batches (16 goroutines x batch 256) must hold >=4x the single-point
# fsync-per-write baseline (1 goroutine x batch 1, the seed ingest
# discipline).
go test -run '^$' -bench '^BenchmarkTSDBWriteParallel$' -benchtime 0.3s . > bench7.out
awk '
    /^BenchmarkTSDBWriteParallel\// {
        split($1, name, "/")
        g = substr(name[2], 2) + 0
        bsz = name[3]; sub(/^b/, "", bsz); sub(/-[0-9]+$/, "", bsz); bsz += 0
        for (i = 2; i <= NF; i++) if ($i == "points/s") pps[g "," bsz] = $(i - 1) + 0
    }
    END {
        printf "{\n  \"benchmark\": \"BenchmarkTSDBWriteParallel\",\n  \"fsync\": \"always\",\n  \"rows\": [\n"
        n = 0
        for (g = 1; g <= 16; g *= 4) for (b = 1; b <= 256; b *= 16) {
            if (n++) printf ",\n"
            printf "    {\"goroutines\": %d, \"batch\": %d, \"points_per_sec\": %.0f}", g, b, pps[g "," b]
        }
        base = pps["1,1"]; top = pps["16,256"]
        printf "\n  ],\n  \"single_point_baseline_points_per_sec\": %.0f,\n", base
        printf "  \"g16_b256_points_per_sec\": %.0f,\n", top
        printf "  \"speedup_g16_b256_vs_single_point\": %.2f\n}\n", top / base
        if (base <= 0 || top < 4 * base) exit 1
    }
' bench7.out > BENCH_7.json || {
    echo "ingest bench gate: g16/b256 did not reach 4x the g1/b1 single-point baseline:" >&2
    cat bench7.out >&2
    exit 1
}
rm -f bench7.out
echo "ingest bench: $(grep speedup BENCH_7.json | tr -d ' ,')"

# Perf record: sweep the aggregation query engine (scan workers x
# dataset size, cache bypassed) against the raw materialize-and-fold
# baseline it replaces, recording the points/s trajectory in
# BENCH_9.json. Gates: the engine at 16 workers on 1e6 points must hold
# >=2x the raw baseline on any machine (the win is algorithmic — no
# per-row map allocations); it must additionally hold >=2x its own
# 1-worker scan only when >=4 CPUs are present, because stripe
# parallelism cannot speed up a single core.
cpus=$(nproc 2>/dev/null || echo 1)
go test -run '^$' -bench '^BenchmarkQueryAggregate$' -benchtime 0.3s . > bench9.out
awk -v cpus="$cpus" '
    /^BenchmarkQueryAggregate\// {
        split($1, name, "/")
        mode = name[2]
        sz = name[3]; sub(/^n/, "", sz); sub(/-[0-9]+$/, "", sz); sz += 0
        for (i = 2; i <= NF; i++) if ($i == "points/s") pps[mode "," sz] = $(i - 1) + 0
    }
    END {
        printf "{\n  \"benchmark\": \"BenchmarkQueryAggregate\",\n  \"cpus\": %d,\n  \"rows\": [\n", cpus
        n = 0
        split("raw w1 w4 w16", modes, " ")
        split("10000 1000000", sizes, " ")
        for (si = 1; si <= 2; si++) for (mi = 1; mi <= 4; mi++) {
            if (n++) printf ",\n"
            printf "    {\"mode\": \"%s\", \"points\": %d, \"points_per_sec\": %.0f}", \
                modes[mi], sizes[si], pps[modes[mi] "," sizes[si]]
        }
        raw = pps["raw,1000000"]; w1 = pps["w1,1000000"]; w16 = pps["w16,1000000"]
        printf "\n  ],\n  \"raw_baseline_n1e6_points_per_sec\": %.0f,\n", raw
        printf "  \"w1_n1e6_points_per_sec\": %.0f,\n", w1
        printf "  \"w16_n1e6_points_per_sec\": %.0f,\n", w16
        printf "  \"speedup_w16_vs_raw\": %.2f,\n", w16 / raw
        printf "  \"speedup_w16_vs_w1\": %.2f\n}\n", w16 / w1
        if (raw <= 0 || w16 < 2 * raw) exit 1
        if (cpus >= 4 && w16 < 2 * w1) exit 1
    }
' bench9.out > BENCH_9.json || {
    echo "query bench gate: engine w16/n1e6 did not clear its baselines (2x raw always; 2x w1 with >=4 CPUs):" >&2
    cat bench9.out >&2
    exit 1
}
rm -f bench9.out
echo "query bench: $(grep -E 'speedup|cpus' BENCH_9.json | tr -d ' ,')"

# Perf record: measure the columnar storage engine against the row
# store it replaces, recording both axes in BENCH_10.json. Footprint:
# resident bytes/point of []Point rows vs the sealed-block DB at 1e4
# and 1e6 points. Scan: a faithful replica of the pre-columnar
# per-row map fold (rowscan) vs the block-aware engine at 1 worker
# (engine) vs the footer-only fast path (footer), same query, same
# windows. Gates at 1e6: columnar must hold >=4x less memory per
# point, and the 1-worker engine scan must hold >=2x the row-store
# fold throughput — both within-run ratios, so machine-independent.
go test -run '^$' -bench '^(BenchmarkStorageFootprint|BenchmarkBlockScan)$' -benchtime 1x . > bench10.out
awk '
    /^BenchmarkStorageFootprint\// {
        split($1, name, "/")
        mode = name[2]
        sz = name[3]; sub(/^n/, "", sz); sub(/-[0-9]+$/, "", sz); sz += 0
        for (i = 2; i <= NF; i++) if ($i == "bytes/point") bpp[mode "," sz] = $(i - 1) + 0
    }
    /^BenchmarkBlockScan\// {
        split($1, name, "/")
        mode = name[2]
        sz = name[3]; sub(/^n/, "", sz); sub(/-[0-9]+$/, "", sz); sz += 0
        for (i = 2; i <= NF; i++) if ($i == "points/s") pps[mode "," sz] = $(i - 1) + 0
    }
    END {
        printf "{\n  \"benchmark\": \"BenchmarkStorageFootprint+BenchmarkBlockScan\",\n  \"footprint\": [\n"
        n = 0
        split("rowstore columnar", fmodes, " ")
        split("10000 1000000", sizes, " ")
        for (mi = 1; mi <= 2; mi++) {
            if (n++) printf ",\n"
            printf "    {\"mode\": \"%s\", \"points\": 1000000, \"bytes_per_point\": %.2f}", \
                fmodes[mi], bpp[fmodes[mi] ",1000000"]
        }
        printf "\n  ],\n  \"scan\": [\n"
        n = 0
        split("rowscan engine footer", smodes, " ")
        for (si = 1; si <= 2; si++) for (mi = 1; mi <= 3; mi++) {
            if (n++) printf ",\n"
            printf "    {\"mode\": \"%s\", \"points\": %d, \"points_per_sec\": %.0f}", \
                smodes[mi], sizes[si], pps[smodes[mi] "," sizes[si]]
        }
        rowb = bpp["rowstore,1000000"]; colb = bpp["columnar,1000000"]
        raws = pps["rowscan,1000000"]; eng = pps["engine,1000000"]; foot = pps["footer,1000000"]
        printf "\n  ],\n  \"rowstore_bytes_per_point_n1e6\": %.2f,\n", rowb
        printf "  \"columnar_bytes_per_point_n1e6\": %.2f,\n", colb
        printf "  \"footprint_ratio_n1e6\": %.2f,\n", rowb / colb
        printf "  \"rowscan_n1e6_points_per_sec\": %.0f,\n", raws
        printf "  \"engine_n1e6_points_per_sec\": %.0f,\n", eng
        printf "  \"footer_n1e6_points_per_sec\": %.0f,\n", foot
        printf "  \"speedup_engine_vs_rowscan_n1e6\": %.2f\n}\n", eng / raws
        if (colb <= 0 || rowb < 4 * colb) exit 1
        if (raws <= 0 || eng < 2 * raws) exit 1
    }
' bench10.out > BENCH_10.json || {
    echo "storage bench gate: columnar did not hold 4x footprint and 2x scan vs the row store at 1e6:" >&2
    cat bench10.out >&2
    exit 1
}
rm -f bench10.out
echo "storage bench: $(grep -E 'ratio|speedup' BENCH_10.json | tr -d ' ,')"

# API gate: the daemon's public surface is context-first. Any NEW exported
# method on *Daemon must take `ctx context.Context` as its first parameter.
# Grandfathered exceptions: the deprecated positional wrappers kept for
# compatibility, and accessors/configuration that perform no cancellable
# work. Extend the allowlist only when adding another pure accessor.
# Close is shutdown-path: it must run unconditionally even when every
# request context is already dead, so it is deliberately context-free.
wrappers='Probe|Monitor|Observe|ObserveGPUKernel|LiveCARM|Scan|RunSTREAM|RunHPCG|ConstructCARM'
accessors='AttachTarget|Target|Hosts|KB|SetTelemetrySink|SelfSnapshot|SelfSpans|MetaDashboard|ExposeAddr|Close'
violations=$(grep -h 'func (d \*Daemon) [A-Z]' internal/core/*.go \
    | grep -v 'ctx context\.Context' \
    | grep -Ev "func \(d \*Daemon\) ($wrappers|$accessors)\(" || true)
if [ -n "$violations" ]; then
    echo "context-first API gate: exported Daemon methods must take 'ctx context.Context' first:" >&2
    echo "$violations" >&2
    exit 1
fi

# Same rule for the trace-export surface: any exported traceexport
# function that writes through a Sink performs I/O and must be
# cancellable, i.e. take `ctx context.Context` first. Pure assembly /
# rendering helpers (Assemble, Attribute, Waterfall, ChromeTrace) are
# exempt because they never leave the process.
trace_violations=$(grep -h '^func [A-Z].*Sink' internal/introspect/traceexport/*.go \
    | grep -v 'ctx context\.Context' || true)
if [ -n "$trace_violations" ]; then
    echo "context-first API gate: exported traceexport funcs taking a Sink must take 'ctx context.Context' first:" >&2
    echo "$trace_violations" >&2
    exit 1
fi

# Same rule for the wire clients: every exported method on the tsdb /
# docdb clients and the superdb remote that crosses the wire must have a
# context-first form. The context-free names below are grandfathered
# deprecated wrappers (one-line delegates to the Context twin); pure
# accessors and the shutdown path are exempt. A NEW context-free wire
# method fails here — add the ...Context form and wrap it instead.
client_wrappers='Write|WritePoint|WriteBatch|Query|Ping|Insert|InsertBatch|Upsert|Find|Get|Count|ReportJob|ReportKB|ReportObservation|Hosts|QueryObservation'
client_accessors='Stats|Transport|Close|SetIntrospection|SetLogger'
client_violations=$(grep -h 'func (c \*Client) [A-Z]\|func (r \*Remote) [A-Z]' \
    internal/tsdb/*.go internal/docdb/*.go internal/superdb/*.go \
    | grep -v 'ctx context\.Context' \
    | grep -Ev "\) ($client_wrappers|$client_accessors)\(" || true)
if [ -n "$client_violations" ]; then
    echo "context-first API gate: exported wire-client methods must take 'ctx context.Context' first:" >&2
    echo "$client_violations" >&2
    exit 1
fi

# Same rule for the embedded DB's query entry points: a NEW exported
# Execute*/Query*/Write* method on tsdb.DB is cancellable work (the
# aggregation engine checks ctx between stripes) and must take ctx
# first. Execute, QueryString, WritePoint and WriteBatch are the
# grandfathered context-free wrappers.
db_wrappers='Execute|QueryString|WritePoint|WriteBatch'
db_violations=$(grep -hE 'func \(db \*DB\) (Execute|Query|Write)[A-Za-z]*\(' internal/tsdb/*.go \
    | grep -v 'ctx context\.Context' \
    | grep -Ev "\) ($db_wrappers)\(" || true)
if [ -n "$db_violations" ]; then
    echo "context-first API gate: exported tsdb.DB query/write methods must take 'ctx context.Context' first:" >&2
    echo "$db_violations" >&2
    exit 1
fi

# Expose smoke: a daemon serves the live observability plane for real
# scrapers — /healthz answers and /metrics covers the runtime gauges.
# The monitor prints the bound address after its (virtual-time) run and
# -hold keeps the plane up for the scrape window.
go build -o pmove.ci ./cmd/pmove
./pmove.ci monitor -host icl -freq 2 -duration 2 -expose 127.0.0.1:0 -hold 60s > expose_smoke.out 2>&1 &
expose_pid=$!
trap 'kill "$expose_pid" 2>/dev/null || true; rm -f pmove.ci expose_smoke.out' EXIT
expose_addr=""
for _ in $(seq 1 100); do
    expose_addr=$(sed -n 's#^observability plane: http://\([^/]*\)/metrics$#\1#p' expose_smoke.out)
    [ -n "$expose_addr" ] && break
    sleep 0.2
done
if [ -z "$expose_addr" ]; then
    echo "expose smoke: daemon never announced its observability plane:" >&2
    cat expose_smoke.out >&2
    exit 1
fi
curl -fsS "http://$expose_addr/healthz" | grep -q '^ok$' || {
    echo "expose smoke: /healthz did not answer ok" >&2
    exit 1
}
curl -fsS "http://$expose_addr/metrics" | grep -q '^pmove_self_runtime_goroutines' || {
    echo "expose smoke: /metrics lacks pmove_self_runtime_goroutines" >&2
    exit 1
}
kill "$expose_pid" 2>/dev/null || true
echo "expose smoke: /healthz + /metrics served on $expose_addr"

echo "ci: all green"
