#!/bin/sh
# Tier-1 gate: formatting, vet, build, and the full test suite under the
# race detector. Run from the repo root; exits non-zero on any failure.
set -eu

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race -coverprofile=coverage.out -covermode=atomic ./...

# Coverage floor: the total must not regress below the baseline recorded
# when the test substrate landed (measured 80.0% when the durability layer
# landed; floor set with a small drift allowance). Raise the floor when
# coverage grows, never lower it.
coverage_floor=79.5
total=$(go tool cover -func=coverage.out | awk '/^total:/ { gsub(/%/, "", $NF); print $NF }')
rm -f coverage.out
echo "coverage: total ${total}% (floor ${coverage_floor}%)"
if ! awk -v t="$total" -v f="$coverage_floor" 'BEGIN { exit (t + 0 >= f + 0) ? 0 : 1 }'; then
    echo "coverage gate: total ${total}% fell below the ${coverage_floor}% floor" >&2
    exit 1
fi

# Fuzz smoke: each wire-protocol fuzz target runs 10s of real fuzzing
# (their checked-in seed corpora under testdata/fuzz/ already ran in the
# plain `go test` pass above). One -fuzz invocation per target, as the
# fuzz engine requires.
fuzz_smoke() {
    pkg=$1
    target=$2
    echo "fuzz smoke: $target ($pkg)"
    go test -run '^$' -fuzz "^${target}\$" -fuzztime 10s "$pkg"
}
fuzz_smoke ./internal/tsdb FuzzDecodeLine
fuzz_smoke ./internal/tsdb FuzzEncodeDecodeRoundTrip
fuzz_smoke ./internal/introspect FuzzParseTraceparent
fuzz_smoke ./internal/docdb FuzzDocdbFrame
fuzz_smoke ./internal/storage FuzzWALRecord

# Benchmark smoke: every benchmark must still compile and survive one
# iteration — catches bit-rotted b.Run setups without paying for real
# measurement.
go test -run NONE -bench . -benchtime 1x ./...

# API gate: the daemon's public surface is context-first. Any NEW exported
# method on *Daemon must take `ctx context.Context` as its first parameter.
# Grandfathered exceptions: the deprecated positional wrappers kept for
# compatibility, and accessors/configuration that perform no cancellable
# work. Extend the allowlist only when adding another pure accessor.
# Close is shutdown-path: it must run unconditionally even when every
# request context is already dead, so it is deliberately context-free.
wrappers='Probe|Monitor|Observe|ObserveGPUKernel|LiveCARM|Scan|RunSTREAM|RunHPCG|ConstructCARM'
accessors='AttachTarget|Target|Hosts|KB|SetTelemetrySink|SelfSnapshot|SelfSpans|MetaDashboard|Close'
violations=$(grep -h 'func (d \*Daemon) [A-Z]' internal/core/*.go \
    | grep -v 'ctx context\.Context' \
    | grep -Ev "func \(d \*Daemon\) ($wrappers|$accessors)\(" || true)
if [ -n "$violations" ]; then
    echo "context-first API gate: exported Daemon methods must take 'ctx context.Context' first:" >&2
    echo "$violations" >&2
    exit 1
fi

# Same rule for the trace-export surface: any exported traceexport
# function that writes through a Sink performs I/O and must be
# cancellable, i.e. take `ctx context.Context` first. Pure assembly /
# rendering helpers (Assemble, Attribute, Waterfall, ChromeTrace) are
# exempt because they never leave the process.
trace_violations=$(grep -h '^func [A-Z].*Sink' internal/introspect/traceexport/*.go \
    | grep -v 'ctx context\.Context' || true)
if [ -n "$trace_violations" ]; then
    echo "context-first API gate: exported traceexport funcs taking a Sink must take 'ctx context.Context' first:" >&2
    echo "$trace_violations" >&2
    exit 1
fi

echo "ci: all green"
