package pmove

import (
	"pmove/internal/cluster"
	"strings"
	"testing"
)

// TestPublicAPIEndToEnd exercises the facade the way the README's
// quickstart does: probe, views, monitor, observe, CARM, dashboards and
// SUPERDB upload, all through the exported surface only.
func TestPublicAPIEndToEnd(t *testing.T) {
	d, err := NewDaemon(EnvFromOS())
	if err != nil {
		t.Fatal(err)
	}
	sys := MustPreset(PresetCSL)
	if _, err := d.AttachTarget(sys, MachineConfig{Seed: 99}, DefaultPipeline()); err != nil {
		t.Fatal(err)
	}
	kb, err := d.Probe(PresetCSL)
	if err != nil {
		t.Fatal(err)
	}
	if kb.Len() == 0 {
		t.Fatal("empty KB")
	}

	// Views.
	if _, err := kb.LevelView(KindThread); err != nil {
		t.Fatal(err)
	}

	// Scenario A.
	mon, err := d.Monitor(PresetCSL, nil, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if mon.Stats.Inserted == 0 {
		t.Fatal("no telemetry inserted")
	}
	dash, err := RenderDashboard(d.TS, mon.Dashboard, 48)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dash, "dashboard") {
		t.Error("dashboard render broken")
	}

	// Scenario B with a likwid kernel.
	spec, err := LikwidKernel("ddot", ISAAVX512, 1<<20, 500)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := d.Observe(ObserveRequest{
		Host: PresetCSL, Workload: spec, Threads: 4, Pin: PinBalanced,
		HWEvents: []string{"UNHALTED_CORE_CYCLES", "INSTRUCTION_RETIRED"},
		FreqHz:   16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.Queries) == 0 {
		t.Fatal("no recall queries")
	}

	// CARM.
	model, err := d.ConstructCARM(PresetCSL, ISAAVX512, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out := RenderCARM(model, nil, 40, 10); !strings.Contains(out, "live-CARM") {
		t.Error("CARM render broken")
	}

	// SpMV through the facade.
	m, err := GenerateMatrix("adaptive", 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, _, err := Reorder(m, OrderRCM, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, r.Cols)
	y := make([]float64, r.Rows)
	if err := SpMV(r, AlgoMerge, x, y, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := DeriveSpMVWorkload(sys, r, AlgoMKL, 4); err != nil {
		t.Fatal(err)
	}

	// SUPERDB.
	global := NewSuperDB()
	if err := global.ReportKB(kb); err != nil {
		t.Fatal(err)
	}
	if len(global.Hosts()) != 1 {
		t.Fatal("SUPERDB upload failed")
	}

	// Abstraction layer.
	reg, err := DefaultAbstRegistry()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Get("cascade", "TOTAL_MEMORY_OPERATIONS"); err != nil {
		t.Fatal(err)
	}
}

// TestPinFacade covers the exported pinning helper.
func TestPinFacade(t *testing.T) {
	sys := MustPreset(PresetICL)
	for _, strat := range []PinStrategy{PinBalanced, PinCompact, PinNUMABalanced, PinNUMACompact} {
		pin, err := Pin(sys, strat, 4)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if len(pin) != 4 {
			t.Fatalf("%s: %v", strat, pin)
		}
	}
}

// TestCrossLevelViewFacade builds the Fig 2(d) view through the facade.
func TestCrossLevelViewFacade(t *testing.T) {
	mk := func(preset string) *KB {
		d, err := NewDaemon(EnvFromOS())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.AttachTarget(MustPreset(preset), MachineConfig{Seed: 1}, DefaultPipeline()); err != nil {
			t.Fatal(err)
		}
		k, err := d.Probe(preset)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	v, err := CrossLevelView(KindSocket, mk(PresetSKX), mk(PresetICL))
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Nodes) != 3 {
		t.Fatalf("nodes: %d", len(v.Nodes))
	}
}

// TestExtensionsFacade exercises the anomaly/what-if/cluster exports.
func TestExtensionsFacade(t *testing.T) {
	spec, err := LikwidKernel("peakflops", ISAAVX2, 4<<10, 2000)
	if err != nil {
		t.Fatal(err)
	}
	out, err := PredictOn(MustPreset(PresetZEN3), spec, 8, PinBalanced)
	if err != nil {
		t.Fatal(err)
	}
	if out.GFLOPS <= 0 || out.Bottleneck == "" {
		t.Errorf("outcome: %+v", out)
	}
	rec, err := RecommendUpgrade(PresetICL, spec, 32)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Suggestion == "" {
		t.Error("no suggestion")
	}
	if DefaultAnomalyScanner() == nil {
		t.Error("no scanner")
	}
	c, err := NewCluster(PresetICL, 2, clusterFabric(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes()) != 2 {
		t.Error("cluster facade broken")
	}
}

func clusterFabric() cluster.Interconnect {
	return cluster.Interconnect{LinkGBs: 12.5, LatencyMicros: 2}
}
